(* Tests for the fault-plan engine and the supervised harness: plan
   purity and parsing, injector semantics on a raw simulated memory,
   neutrality of the empty plan, graceful degradation of every
   workload under page-budget walls, 100% sanitizer detection of
   injected bit-flips, the crash-consistent journal (including torn
   lines), and the kill-at-random-cell / --resume byte-identity
   property. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let quick = Workloads.Workload.Quick
let cfrac = Workloads.Workload.find "cfrac"

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let budget b = Fault.Plan.make [ Fault.Plan.Page_budget b ]

(* {1 Plans} *)

let test_plan_parse_roundtrip () =
  let spec = "budget=64,oom-at=3,ramp=0.1:0.01,flip=8:5" in
  match Fault.Plan.of_string ~seed:7 spec with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check_str "round-trips" spec (Fault.Plan.to_string p);
      check_int "seed travels" 7 (Fault.Plan.seed p);
      check_int "four clauses" 4 (List.length (Fault.Plan.clauses p))

let test_plan_parse_errors () =
  let bad s =
    match Fault.Plan.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (s ^ " should not parse")
  in
  bad "bogus";
  bad "budget=x";
  bad "budget=-1";
  bad "oom-at=0";
  bad "ramp=0.1";
  bad "flip=0:3";
  bad "flip=1:32";
  (match Fault.Plan.of_string "none" with
  | Ok p -> check_bool "none is empty" true (Fault.Plan.is_empty p)
  | Error e -> Alcotest.fail e);
  match Fault.Plan.of_string "" with
  | Ok p -> check_bool "empty spec is empty" true (Fault.Plan.is_empty p)
  | Error e -> Alcotest.fail e

let test_plan_budget_semantics () =
  let p = budget 10 in
  let deny ~event ~pages ~pages_before =
    (Fault.Plan.decision p ~event ~pages ~pages_before).Fault.Plan.deny
  in
  check_bool "within budget" false (deny ~event:1 ~pages:4 ~pages_before:0);
  check_bool "exactly budget" false (deny ~event:2 ~pages:10 ~pages_before:0);
  check_bool "over in one go" true (deny ~event:1 ~pages:11 ~pages_before:0);
  check_bool "over cumulatively" true (deny ~event:5 ~pages:4 ~pages_before:7)

let test_plan_oom_at () =
  let p = Fault.Plan.make [ Fault.Plan.Oom_at 3 ] in
  let deny event =
    (Fault.Plan.decision p ~event ~pages:1 ~pages_before:0).Fault.Plan.deny
  in
  Alcotest.(check (list bool))
    "only the third map is denied"
    [ false; false; true; false; false ]
    (List.map deny [ 1; 2; 3; 4; 5 ])

let test_plan_ramp_extremes () =
  let always =
    Fault.Plan.make [ Fault.Plan.Denial_ramp { start = 1.0; slope = 0. } ]
  and never =
    Fault.Plan.make [ Fault.Plan.Denial_ramp { start = 0.; slope = 0. } ]
  in
  for event = 1 to 50 do
    check_bool "p=1 denies" true
      (Fault.Plan.decision always ~event ~pages:1 ~pages_before:0).Fault.Plan.deny;
    check_bool "p=0 never denies" false
      (Fault.Plan.decision never ~event ~pages:1 ~pages_before:0).Fault.Plan.deny
  done

let clause_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Fault.Plan.Page_budget n) (int_bound 100);
        map (fun n -> Fault.Plan.Oom_at (1 + n)) (int_bound 50);
        map
          (fun (s, sl) ->
            Fault.Plan.Denial_ramp
              {
                start = float_of_int s /. 100.;
                slope = float_of_int sl /. 1000.;
              })
          (pair (int_bound 100) (int_bound 100));
        map
          (fun (e, b) -> Fault.Plan.Bit_flip { every = 1 + e; bit = b land 31 })
          (pair (int_bound 20) (int_bound 31));
      ])

let plan_arb =
  QCheck.make
    ~print:(fun (seed, clauses) ->
      Fault.Plan.to_string (Fault.Plan.make ~seed clauses))
    QCheck.Gen.(pair (int_bound 1000) (list_size (int_range 0 5) clause_gen))

(* The load-bearing plan property: [decision] is a pure function of
   (plan, event, pages, pages_before) — same answers from a fresh plan
   value, and in any evaluation order.  This is what makes any
   reported fault replayable from its --plan/--seed pair alone. *)
let test_plan_purity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"plan decisions are pure" plan_arb
       (fun (seed, clauses) ->
         let p1 = Fault.Plan.make ~seed clauses
         and p2 = Fault.Plan.make ~seed clauses in
         let events = List.init 20 (fun i -> i + 1) in
         let run p es =
           List.map
             (fun event ->
               Fault.Plan.decision p ~event ~pages:(1 + (event mod 3))
                 ~pages_before:(2 * event))
             es
         in
         run p1 events = run p2 events
         && run p1 (List.rev events) = List.rev (run p2 events)))

let test_plan_string_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"to_string/of_string round-trip"
       plan_arb (fun (seed, clauses) ->
         let p = Fault.Plan.make ~seed clauses in
         match Fault.Plan.of_string ~seed (Fault.Plan.to_string p) with
         | Error _ -> false
         | Ok p' -> Fault.Plan.to_string p' = Fault.Plan.to_string p))

(* {1 Injector on a raw memory} *)

let test_inject_budget_wall () =
  let mem = Sim.Memory.create () in
  Fault.Inject.with_plan ~plan:(budget 3) mem (fun inj ->
      ignore (Sim.Memory.map_pages mem 2);
      ignore (Sim.Memory.map_pages mem 1);
      (match Sim.Memory.map_pages mem 1 with
      | _ -> Alcotest.fail "fourth page should be denied"
      | exception Sim.Memory.Fault _ -> ());
      check_int "three events" 3 (Fault.Inject.events inj);
      check_int "one denial" 1 (Fault.Inject.denials inj);
      check_int "three pages granted" 3 (Fault.Inject.pages_granted inj);
      (* one-shot plans recover: nothing else denies *)
      check_int "no flips" 0 (Fault.Inject.flips inj));
  (* with_plan uninstalled the hooks: the same request now succeeds *)
  ignore (Sim.Memory.map_pages mem 1)

let test_inject_flip_applied () =
  let mem = Sim.Memory.create () in
  let base = Sim.Memory.map_pages mem 1 in
  Sim.Memory.poke mem base 0xABCD;
  let plan = Fault.Plan.make [ Fault.Plan.Bit_flip { every = 1; bit = 4 } ] in
  Fault.Inject.with_plan ~pick:(fun ~u:_ ~bit -> Some (base, bit)) ~plan mem
    (fun inj ->
      ignore (Sim.Memory.map_pages mem 1);
      check_int "one flip applied" 1 (Fault.Inject.flips inj);
      Alcotest.(check (list (pair int int)))
        "applied records the target" [ (base, 4) ]
        (Fault.Inject.applied inj);
      check_int "bit 4 flipped" (0xABCD lxor 0x10) (Sim.Memory.peek mem base))

let test_inject_empty_plan_neutral () =
  let run ?plan () =
    let mem = Sim.Memory.create () in
    let exercise () =
      let a = Sim.Memory.map_pages mem 2 in
      for i = 0 to 63 do
        Sim.Memory.poke mem (a + (4 * i)) (i * i)
      done;
      ignore (Sim.Memory.map_pages mem 1);
      let s = ref 0 in
      for i = 0 to 63 do
        s := !s + Sim.Memory.peek mem (a + (4 * i))
      done;
      !s
    in
    let v =
      match plan with
      | None -> exercise ()
      | Some plan -> Fault.Inject.with_plan ~plan mem (fun _ -> exercise ())
    in
    (v, Sim.Memory.limit mem)
  in
  Alcotest.(check (pair int int))
    "empty plan is observationally neutral" (run ())
    (run ~plan:(Fault.Plan.none ()) ())

(* {1 Fuzz-level: every allocator under denial plans} *)

let test_fault_plans_all_allocators () =
  List.iter
    (fun target ->
      List.iter
        (fun spec ->
          let plan =
            match Fault.Plan.of_string spec with Ok p -> p | Error e -> Alcotest.fail e
          in
          match Check.Fuzz.fault_plan_injection target ~plan ~ops:300 with
          | Ok _ -> ()
          | Error e ->
              Alcotest.fail
                (Fmt.str "%s under %s: %s" target.Check.Fuzz.label spec e))
        [ "budget=6"; "oom-at=2,oom-at=5"; "ramp=0:0.02"; "budget=8,ramp=0:0.01" ])
    (Check.Fuzz.targets ())

let test_bitflip_detection_sun () =
  match
    Check.Fuzz.bitflip_detection (Check.Fuzz.find_target "sun") ~seed:11 ~ops:60
  with
  | Ok s -> check_bool "reports 100%" true (contains s "100%")
  | Error e -> Alcotest.fail e

let test_bitflip_detection_lea () =
  match
    Check.Fuzz.bitflip_detection (Check.Fuzz.find_target "lea") ~seed:23 ~ops:60
  with
  | Ok s -> check_bool "reports 100%" true (contains s "100%")
  | Error e -> Alcotest.fail e

(* {1 Workload-level graceful degradation} *)

(* Every workload, under every allocator column of its row, must
   degrade gracefully when the simulated OS enforces a tight page
   budget: the denial surfaces as the documented fault (or the
   workload completes within budget), and every heap structure still
   passes its consistency walk. *)
let test_workloads_degrade_gracefully () =
  List.iter
    (fun spec ->
      List.iter
        (fun mode ->
          let o = Harness.Faultrun.run ~plan:(budget 8) spec mode quick in
          if not (Harness.Faultrun.graceful o) then
            Alcotest.fail (Fmt.str "%a" Harness.Faultrun.pp_outcome o))
        (Workloads.Workload.modes_for spec))
    (Workloads.Workload.all
    @ [ Workloads.Workload.moss_slow ]
    @ Workloads.Workload.extras)

(* Workload-level neutrality: installing the empty plan changes no
   simulated count — the injector costs nothing until it acts. *)
let test_workload_empty_plan_neutral () =
  let run ?plan mode =
    let api = Workloads.Api.create ~with_cache:true mode in
    let go () = cfrac.Workloads.Workload.run api quick in
    let summary =
      match plan with
      | None -> go ()
      | Some plan ->
          Fault.Inject.with_plan ~plan (Workloads.Api.memory api) (fun _ ->
              go ())
    in
    Fmt.str "%s cycles=%d os=%d" summary
      (Sim.Cost.cycles (Sim.Memory.cost (Workloads.Api.memory api)))
      (Workloads.Api.os_bytes api)
  in
  List.iter
    (fun mode ->
      check_str
        ("empty plan neutral under " ^ Workloads.Api.mode_name mode)
        (run mode)
        (run ~plan:(Fault.Plan.none ()) mode))
    [ Workloads.Api.Direct Workloads.Api.Sun; Workloads.Api.Region { safe = true } ]

(* {1 Journal} *)

let sample_entry () =
  {
    Harness.Journal.workload = "cfrac";
    mode = "sun";
    result = Workloads.Workload.run_collect cfrac (Workloads.Api.Direct Sun) quick;
  }

let test_journal_line_roundtrip () =
  let e = sample_entry () in
  match Harness.Journal.entry_of_line (Harness.Journal.line_of_entry e) with
  | None -> Alcotest.fail "line should parse"
  | Some e' ->
      check_str "workload" e.Harness.Journal.workload e'.Harness.Journal.workload;
      check_str "mode" e.Harness.Journal.mode e'.Harness.Journal.mode;
      check_str "result"
        (Fmt.str "%a" Workloads.Results.pp e.Harness.Journal.result)
        (Fmt.str "%a" Workloads.Results.pp e'.Harness.Journal.result)

let test_journal_torn_line_rejected () =
  let line = Harness.Journal.line_of_entry (sample_entry ()) in
  (* every strict prefix is a torn write: must be rejected, not trusted *)
  let n = String.length line in
  List.iter
    (fun k ->
      match Harness.Journal.entry_of_line (String.sub line 0 k) with
      | None -> ()
      | Some _ -> Alcotest.fail (Fmt.str "torn prefix of %d bytes accepted" k))
    [ 3; 11; n / 2; n - 8; n - 1 ];
  (* single-character damage to the payload must be caught by the hash *)
  let damaged = Bytes.of_string line in
  Bytes.set damaged (n - 1)
    (if Bytes.get damaged (n - 1) = '0' then '1' else '0');
  match Harness.Journal.entry_of_line (Bytes.to_string damaged) with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupted payload accepted"

let test_journal_load_skips_torn () =
  let path = Filename.temp_file "fault_journal" ".j" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let e = sample_entry () in
  let line = Harness.Journal.line_of_entry e in
  let oc = open_out_bin path in
  output_string oc (line ^ "\n");
  output_string oc "cell1 bogus torn\n";
  (* a kill mid-write leaves a final line with no newline *)
  output_string oc (String.sub line 0 (String.length line / 2));
  close_out oc;
  let entries, skipped = Harness.Journal.load path in
  check_int "one valid entry" 1 (List.length entries);
  check_int "two damaged lines skipped" 2 skipped

let test_journal_append_load () =
  let path = Filename.temp_file "fault_journal" ".j" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let e = sample_entry () in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Harness.Journal.append oc e;
  Harness.Journal.append oc { e with mode = "lea" };
  close_out oc;
  let entries, skipped = Harness.Journal.load path in
  check_int "no damage" 0 skipped;
  Alcotest.(check (list string))
    "both cells, in order" [ "sun"; "lea" ]
    (List.map (fun e -> e.Harness.Journal.mode) entries)

let test_journal_missing_file_empty () =
  let entries, skipped = Harness.Journal.load "/nonexistent/fault.journal" in
  check_int "no entries" 0 (List.length entries);
  check_int "no damage" 0 skipped

(* {1 Keyed (daemon) journal} *)

let sample_keyed () =
  {
    Harness.Journal.k_build = "4db1d8cfbc6ba71e3dfc3d2f8c8a9c21";
    k_workload = "cfrac";
    k_mode = "sun";
    k_size = "quick";
    k_seed = 3;
    k_plan = "budget=64,ramp=0:0.01";
    k_result =
      Workloads.Workload.run_collect cfrac (Workloads.Api.Direct Sun) quick;
  }

let test_keyed_line_roundtrip () =
  let k = sample_keyed () in
  match Harness.Journal.keyed_of_line (Harness.Journal.line_of_keyed k) with
  | None -> Alcotest.fail "keyed line should parse"
  | Some k' ->
      check_str "build id" k.Harness.Journal.k_build
        k'.Harness.Journal.k_build;
      check_str "workload" k.Harness.Journal.k_workload
        k'.Harness.Journal.k_workload;
      check_str "mode" k.Harness.Journal.k_mode k'.Harness.Journal.k_mode;
      check_str "size" k.Harness.Journal.k_size k'.Harness.Journal.k_size;
      check_int "seed" k.Harness.Journal.k_seed k'.Harness.Journal.k_seed;
      check_str "plan survives hex transport" k.Harness.Journal.k_plan
        k'.Harness.Journal.k_plan;
      check_str "result"
        (Fmt.str "%a" Workloads.Results.pp k.Harness.Journal.k_result)
        (Fmt.str "%a" Workloads.Results.pp k'.Harness.Journal.k_result)

(* The buildless "cell3" generation is unknown-version damage to the
   loader, not a parse: a pre-build-id journal degrades to "re-run
   those cells", it can never smuggle stale measurements past the
   build check. *)
let test_keyed_old_version_rejected () =
  let line = Harness.Journal.line_of_keyed (sample_keyed ()) in
  let downgraded = "cell3" ^ String.sub line 5 (String.length line - 5) in
  match Harness.Journal.keyed_of_line downgraded with
  | None -> ()
  | Some _ -> Alcotest.fail "cell3-tagged line accepted by the cell4 loader"

let test_keyed_torn_rejected () =
  let line = Harness.Journal.line_of_keyed (sample_keyed ()) in
  let n = String.length line in
  List.iter
    (fun k ->
      match Harness.Journal.keyed_of_line (String.sub line 0 k) with
      | None -> ()
      | Some _ -> Alcotest.fail (Fmt.str "torn prefix of %d bytes accepted" k))
    [ 4; 12; n / 2; n - 8; n - 1 ];
  let damaged = Bytes.of_string line in
  Bytes.set damaged (n - 1)
    (if Bytes.get damaged (n - 1) = '0' then '1' else '0');
  match Harness.Journal.keyed_of_line (Bytes.to_string damaged) with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupted keyed payload accepted"

(* The two journal kinds must not contaminate each other: a "cell2"
   batch line is unknown-version damage to the keyed loader and vice
   versa, so pointing the daemon at a batch journal (or the reverse)
   degrades to "re-run those cells", never to a mis-keyed resume. *)
let test_keyed_and_batch_lines_disjoint () =
  let path = Filename.temp_file "fault_keyed" ".j" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let k = sample_keyed () in
  let e = sample_entry () in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Harness.Journal.append oc e;
  Harness.Journal.append_keyed oc k;
  Harness.Journal.append_keyed oc { k with k_seed = 4 };
  close_out oc;
  let keyed, k_skipped = Harness.Journal.load_keyed path in
  check_int "two keyed entries" 2 (List.length keyed);
  check_int "the batch line is damage to the keyed loader" 1 k_skipped;
  let entries, e_skipped = Harness.Journal.load path in
  check_int "one batch entry" 1 (List.length entries);
  check_int "keyed lines are damage to the batch loader" 2 e_skipped

(* {1 Watchdog fd hygiene}

   A timed-out replay cell used to leak its trace-reader fd: the
   watchdog raised in the supervisor while the abandoned attempt
   domain still held the open file.  The Guard protocol closes
   guard-registered resources from whichever side loses the race, so
   50 forced timeouts must leave the process fd table where it
   started. *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_timeout_fd_leak () =
  let trials = 50 in
  let before = count_fds () in
  for _ = 1 to trials do
    match
      Harness.Matrix.run_attempt ~timeout_s:0.01 (fun guard ->
          let fd = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
          let closed = ref false in
          ignore
            (Harness.Matrix.Guard.register guard (fun () ->
                 closed := true;
                 Unix.close fd));
          (* outlive the watchdog: the supervisor must close [fd] *)
          Unix.sleepf 0.08)
    with
    | () -> Alcotest.fail "watchdog did not fire"
    | exception Harness.Matrix.Cell_timeout _ -> ()
  done;
  (* let the abandoned attempt domains finish their sleeps *)
  Unix.sleepf 0.3;
  let after = count_fds () in
  if after > before then
    Alcotest.failf "fd leak: %d open fds before, %d after %d timeouts" before
      after trials

(* {1 Supervised matrix: resume and triage} *)

let render m =
  String.concat "\n"
    (List.map
       (fun f -> f m)
       [
         Harness.Table23.render_table2;
         Harness.Table23.render_table3;
         Harness.Fig8.render;
         Harness.Fig9.render;
         Harness.Fig10.render;
         Harness.Fig11.render;
         Harness.Claims.render;
       ])

(* One uninterrupted supervised run: the reference report every
   resumed run must reproduce byte for byte, plus its journal. *)
let baseline =
  lazy
    (let path = Filename.temp_file "fault_baseline" ".journal" in
     let m = Harness.Matrix.create quick in
     let sup =
       { Harness.Matrix.default_supervision with journal = Some path }
     in
     let report = Harness.Matrix.run_all_supervised ~domains:4 sup m in
     (path, render m, report))

exception Simulated_crash

let test_supervised_uninterrupted () =
  let _, _, report = Lazy.force baseline in
  check_int "no failures" 0 (List.length report.Harness.Matrix.failures);
  check_int "nothing resumed" 0 report.Harness.Matrix.resumed;
  check_int "no torn lines" 0 report.Harness.Matrix.torn;
  check_int "all 37 cells run" 37 (List.length report.Harness.Matrix.timings)

(* Kill the run after [k] journaled cells (the crash channel is an
   exception from the progress callback, which fires strictly after
   the journal fsync — exactly the durability order a real kill
   sees), then resume with a fresh matrix and the same journal: only
   the remaining cells run and the report is byte-identical. *)
let resume_trial k =
  let _, expected, _ = Lazy.force baseline in
  let path = Filename.temp_file "fault_resume" ".journal" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sup = { Harness.Matrix.default_supervision with journal = Some path } in
  let count = Atomic.make 0 in
  let on_cell _ ~cycles:_ =
    if Atomic.fetch_and_add count 1 + 1 >= k then raise Simulated_crash
  in
  (match
     Harness.Matrix.run_all_supervised ~domains:4 ~on_cell sup
       (Harness.Matrix.create quick)
   with
  | _ -> Alcotest.fail "crash did not propagate"
  | exception Simulated_crash -> ());
  let journaled, torn = Harness.Journal.load path in
  let journaled = List.length journaled in
  check_int "journal has no torn lines" 0 torn;
  check_bool "the crashed cell was already durable" true (journaled >= k);
  check_bool "the crash stopped the run" true (journaled < 37);
  let m = Harness.Matrix.create quick in
  let report = Harness.Matrix.run_all_supervised ~domains:4 sup m in
  check_int "resume restored the journaled cells" journaled
    report.Harness.Matrix.resumed;
  check_int "resume ran exactly the remaining cells" (37 - journaled)
    (List.length report.Harness.Matrix.timings);
  check_int "no failures" 0 (List.length report.Harness.Matrix.failures);
  check_str "resumed report is byte-identical" expected (render m)

let test_resume_fixed () = resume_trial 5

let test_resume_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:2 ~name:"kill at a random cell, then resume"
       (* kill point stays clear of the tail: with 4 domains, up to 3
          in-flight cells still complete (and journal) after the crash,
          and a k at the very end would leave nothing to resume *)
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 30))
       (fun k ->
         resume_trial k;
         true))

(* Watchdog + triage: drop one journaled cell, re-run it under an
   impossible timeout, and check the failure is contained, classified
   transient (retried), and quarantined — while the report machinery
   stays standing. *)
let test_timeout_triage () =
  let base_path, _, _ = Lazy.force baseline in
  let path = Filename.temp_file "fault_timeout" ".journal" in
  let qdir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "fault_quarantine_%d" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let dropped = ("moss", "region") in
  let oc = open_out_bin path in
  let kept = ref 0 in
  List.iter
    (fun (e : Harness.Journal.entry) ->
      if (e.workload, e.mode) <> dropped then begin
        incr kept;
        Harness.Journal.append oc e
      end)
    (fst (Harness.Journal.load base_path));
  close_out oc;
  check_int "dropped exactly one cell" 36 !kept;
  let sup =
    {
      Harness.Matrix.timeout_s = Some 1e-4;
      retries = 2;
      backoff_s = 0.01;
      journal = Some path;
      quarantine = Some qdir;
    }
  in
  let report =
    Harness.Matrix.run_all_supervised ~domains:1 sup
      (Harness.Matrix.create quick)
  in
  check_int "36 cells resumed" 36 report.Harness.Matrix.resumed;
  check_int "no cell succeeded" 0 (List.length report.Harness.Matrix.timings);
  (match report.Harness.Matrix.failures with
  | [ f ] ->
      check_str "failed workload" "moss" f.Harness.Matrix.workload;
      check_str "failed mode" "region" f.Harness.Matrix.mode;
      check_int "watchdog retried: 1 + 2 retries" 3 f.Harness.Matrix.attempts;
      check_bool "error names the watchdog" true
        (contains f.Harness.Matrix.last_error "watchdog")
  | fs -> Alcotest.fail (Fmt.str "expected one failure, got %d" (List.length fs)));
  let error_txt =
    let ic = open_in (Filename.concat qdir "moss-region/error.txt") in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_bool "bundle records the attempts" true (contains error_txt "attempts   : 3");
  check_bool "timeouts skip the diagnostic re-run" true
    (contains error_txt "skipped (timeout")

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "parse round-trip" `Quick test_plan_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "page budget semantics" `Quick
            test_plan_budget_semantics;
          Alcotest.test_case "oom-at is one-shot" `Quick test_plan_oom_at;
          Alcotest.test_case "ramp extremes" `Quick test_plan_ramp_extremes;
          test_plan_purity;
          test_plan_string_roundtrip;
        ] );
      ( "inject",
        [
          Alcotest.test_case "budget wall on raw memory" `Quick
            test_inject_budget_wall;
          Alcotest.test_case "bit-flip lands where aimed" `Quick
            test_inject_flip_applied;
          Alcotest.test_case "empty plan is neutral (raw)" `Quick
            test_inject_empty_plan_neutral;
          Alcotest.test_case "empty plan is neutral (workload)" `Quick
            test_workload_empty_plan_neutral;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "denial plans on all five allocators" `Quick
            test_fault_plans_all_allocators;
          Alcotest.test_case "sanitizer catches 100% of flips (sun)" `Quick
            test_bitflip_detection_sun;
          Alcotest.test_case "sanitizer catches 100% of flips (lea)" `Quick
            test_bitflip_detection_lea;
          Alcotest.test_case "every workload degrades gracefully" `Slow
            test_workloads_degrade_gracefully;
        ] );
      ( "journal",
        [
          Alcotest.test_case "line round-trip" `Quick test_journal_line_roundtrip;
          Alcotest.test_case "torn lines rejected" `Quick
            test_journal_torn_line_rejected;
          Alcotest.test_case "load skips torn lines" `Quick
            test_journal_load_skips_torn;
          Alcotest.test_case "append/load" `Quick test_journal_append_load;
          Alcotest.test_case "missing file is empty" `Quick
            test_journal_missing_file_empty;
          Alcotest.test_case "keyed line round-trip" `Quick
            test_keyed_line_roundtrip;
          Alcotest.test_case "keyed buildless generation rejected" `Quick
            test_keyed_old_version_rejected;
          Alcotest.test_case "keyed torn lines rejected" `Quick
            test_keyed_torn_rejected;
          Alcotest.test_case "keyed/batch kinds disjoint" `Quick
            test_keyed_and_batch_lines_disjoint;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "timeout path closes guarded fds" `Slow
            test_timeout_fd_leak;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "uninterrupted run is clean" `Slow
            test_supervised_uninterrupted;
          Alcotest.test_case "kill at cell 5, resume" `Slow test_resume_fixed;
          test_resume_random;
          Alcotest.test_case "watchdog + retries + quarantine" `Slow
            test_timeout_triage;
        ] );
    ]
