(* Tests for the benchmark workloads: the bignum substrate, each
   workload's correctness, and cross-allocator determinism (every
   memory manager must compute the same answer — the paper's programs
   do not change behaviour when relinked against another malloc). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let quick_api ?(mode = Workloads.Api.Region { safe = true }) () =
  Workloads.Api.create ~with_cache:false mode

(* ------------------------------------------------------------------ *)
(* Bignum *)

let bn_ctx () =
  let api = quick_api () in
  Workloads.Api.with_frame api ~nslots:1 ~ptr_slots:[ 0 ] (fun fr ->
      let r = Workloads.Api.newregion api in
      Workloads.Api.set_local_ptr api fr 0 r;
      { Workloads.Bignum.api; alloc = (fun w -> Workloads.Api.rstralloc api r (w * 4)) })

let test_bignum_roundtrip () =
  let ctx = bn_ctx () in
  List.iter
    (fun n ->
      let a = Workloads.Bignum.of_int ctx n in
      Alcotest.(check (option int)) "roundtrip" (Some n)
        (Workloads.Bignum.to_int_opt ctx a);
      check_str "decimal" (string_of_int n) (Workloads.Bignum.to_decimal ctx a))
    [ 0; 1; 9; 65535; 65536; 123456789; 1 lsl 40 ]

let test_bignum_decimal () =
  let ctx = bn_ctx () in
  let s = "123456789012345678901234567890" in
  let a = Workloads.Bignum.of_decimal ctx s in
  check_str "decimal roundtrip" s (Workloads.Bignum.to_decimal ctx a);
  check "limbs" 7 (Workloads.Bignum.num_limbs ctx a)

let test_bignum_arith_basics () =
  let ctx = bn_ctx () in
  let bn = Workloads.Bignum.of_int ctx in
  let to_i a = Option.get (Workloads.Bignum.to_int_opt ctx a) in
  check "add" 100000000
    (to_i (Workloads.Bignum.add ctx (bn 99999999) (bn 1)));
  check "sub" 99999998 (to_i (Workloads.Bignum.sub ctx (bn 99999999) (bn 1)));
  check "mul" 998001 (to_i (Workloads.Bignum.mul ctx (bn 999) (bn 999)));
  let q, r = Workloads.Bignum.divmod ctx (bn 1000000) (bn 999) in
  check "div" 1001 (to_i q);
  check "mod" 1 (to_i r);
  let q, r = Workloads.Bignum.divmod_small ctx (bn 1000000) 999 in
  check "div small" 1001 (to_i q);
  check "mod small" 1 r;
  check "mod_small" 1 (Workloads.Bignum.mod_small ctx (bn 1000000) 999);
  check "isqrt" 1000 (to_i (Workloads.Bignum.isqrt ctx (bn 1000001)));
  check "gcd" 12 (to_i (Workloads.Bignum.gcd ctx (bn 36) (bn 24)));
  check "mulmod" 24 (to_i (Workloads.Bignum.mulmod ctx (bn 6) (bn 4) (bn 100)));
  check_bool "cmp" true (Workloads.Bignum.compare_nat ctx (bn 5) (bn 6) < 0);
  check_bool "even" true (Workloads.Bignum.is_even ctx (bn 4));
  check_bool "odd" false (Workloads.Bignum.is_even ctx (bn 5))

let test_bignum_errors () =
  let ctx = bn_ctx () in
  let bn = Workloads.Bignum.of_int ctx in
  (match Workloads.Bignum.sub ctx (bn 1) (bn 2) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Workloads.Bignum.divmod ctx (bn 1) (bn 0) with
  | _ -> Alcotest.fail "expected Division_by_zero"
  | exception Division_by_zero -> ()

(* qcheck: bignum ops agree with OCaml int arithmetic on values that
   fit, including multi-limb ones. *)
let qcheck_bignum_matches_int =
  let gen = QCheck.(pair (int_bound (1 lsl 30)) (int_bound (1 lsl 30))) in
  QCheck.Test.make ~count:200 ~name:"bignum agrees with int arithmetic" gen
    (fun (x, y) ->
      let ctx = bn_ctx () in
      let bn = Workloads.Bignum.of_int ctx in
      let to_i a = Workloads.Bignum.to_int_opt ctx a in
      let a = bn x and b = bn y in
      to_i (Workloads.Bignum.add ctx a b) = Some (x + y)
      && to_i (Workloads.Bignum.mul ctx a b) = Some (x * y)
      && (y = 0
         ||
         let q, r = Workloads.Bignum.divmod ctx a b in
         to_i q = Some (x / y) && to_i r = Some (x mod y))
      && to_i (Workloads.Bignum.sub ctx (Workloads.Bignum.add ctx a b) b) = Some x)

let qcheck_bignum_isqrt =
  QCheck.Test.make ~count:100 ~name:"isqrt bounds" QCheck.(int_bound (1 lsl 40))
    (fun n ->
      let ctx = bn_ctx () in
      let r =
        Option.get
          (Workloads.Bignum.to_int_opt ctx
             (Workloads.Bignum.isqrt ctx (Workloads.Bignum.of_int ctx n)))
      in
      (r * r <= n) && (r + 1) * (r + 1) > n)

let qcheck_bignum_decimal_roundtrip =
  QCheck.Test.make ~count:100 ~name:"decimal strings round-trip"
    QCheck.(int_bound (1 lsl 50))
    (fun n ->
      let ctx = bn_ctx () in
      let s = string_of_int n in
      let a = Workloads.Bignum.of_decimal ctx s in
      Workloads.Bignum.to_decimal ctx a = s
      && Workloads.Bignum.to_int_opt ctx a = Some n)

let qcheck_bignum_gcd_properties =
  QCheck.Test.make ~count:100 ~name:"gcd divides both arguments"
    QCheck.(pair (int_range 1 (1 lsl 30)) (int_range 1 (1 lsl 30)))
    (fun (x, y) ->
      let ctx = bn_ctx () in
      let bn = Workloads.Bignum.of_int ctx in
      let g =
        Option.get
          (Workloads.Bignum.to_int_opt ctx
             (Workloads.Bignum.gcd ctx (bn x) (bn y)))
      in
      g > 0 && x mod g = 0 && y mod g = 0
      &&
      (* and is the greatest: gcd(x/g, y/g) = 1 *)
      let rec euclid a b = if b = 0 then a else euclid b (a mod b) in
      euclid (x / g) (y / g) = 1)

(* ------------------------------------------------------------------ *)
(* Individual workloads *)

let test_cfrac_finds_factor () =
  let api = quick_api () in
  let out = Workloads.Cfrac.run api Workloads.Cfrac.default_params in
  (* 2000009000009 = 1000003 * 2000003 *)
  check_bool "factor found" true
    (match out.Workloads.Cfrac.factor with
    | Some "1000003" | Some "2000003" -> true
    | _ -> false)

let test_cfrac_small_factor_shortcut () =
  let api = quick_api () in
  let out =
    Workloads.Cfrac.run api
      { Workloads.Cfrac.default_params with n = "1000006"; bound = 100 }
  in
  check_bool "even number factored instantly" true
    (out.Workloads.Cfrac.factor = Some "2" && out.iterations = 0)

let test_grobner_basis_properties () =
  let api = quick_api () in
  let out = Workloads.Grobner.run api Workloads.Grobner.default_params in
  check_bool "basis grew" true
    (out.Workloads.Grobner.basis_size >= 4);
  check_bool "pairs processed" true (out.pairs_processed > 0)

let test_mudlle_compiles () =
  let api = quick_api () in
  let out = Workloads.Mudlle.run api Workloads.Mudlle.default_params in
  check "all functions compiled"
    (Workloads.Mudlle.default_params.Workloads.Mudlle.functions
    * Workloads.Mudlle.default_params.Workloads.Mudlle.repeats)
    out.Workloads.Mudlle.functions_compiled;
  check_bool "code emitted" true (out.code_words > 0)

let test_mudlle_rejects_direct_mode () =
  let api = quick_api ~mode:(Workloads.Api.Direct Workloads.Api.Lea) () in
  match Workloads.Mudlle.run api Workloads.Mudlle.default_params with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_lcc_compiles () =
  let api = quick_api () in
  let out = Workloads.Lcc.run api Workloads.Lcc.default_params in
  check_bool "statements" true (out.Workloads.Lcc.statements > 100);
  check_bool "triples" true (out.triples > out.statements)

let test_tile_finds_topic_boundaries () =
  let api = quick_api () in
  let p = Workloads.Tile.default_params in
  let out = Workloads.Tile.run api p in
  (* topic changes every 25 sentences x 12 words = 300 tokens; blocks
     of 80 tokens: boundaries must exist *)
  check_bool "found boundaries" true (out.Workloads.Tile.boundaries > 0);
  check "token count" (p.copies * p.sentences * p.words_per_sentence) out.tokens

let test_moss_detects_plagiarised_pair () =
  let api = quick_api () in
  let out = Workloads.Moss.run api Workloads.Moss.default_params in
  let a, b = out.Workloads.Moss.best_pair in
  (* plagiarised pairs are (0,1), (2,3), ... (8,9) *)
  check_bool "best pair is a plagiarised pair" true
    (b = a + 1 && a mod 2 = 0 && a < 10);
  check_bool "matches found" true (out.matches > 0)

let test_game_random_lifetimes_defeat_regions () =
  let peak mode params =
    let api = quick_api ~mode () in
    ignore (Workloads.Game.run api params);
    Workloads.Api.os_bytes api
  in
  let m = peak (Workloads.Api.Direct Workloads.Api.Lea) Workloads.Game.default_params in
  let r = peak (Workloads.Api.Region { safe = true }) Workloads.Game.default_params in
  check_bool "regions balloon with play-driven lifetimes" true
    (float_of_int r > 1.8 *. float_of_int m)

let test_game_correlated_lifetimes_fit_regions () =
  let peak mode params =
    let api = quick_api ~mode () in
    ignore (Workloads.Game.run api params);
    Workloads.Api.os_bytes api
  in
  let m =
    peak (Workloads.Api.Direct Workloads.Api.Lea) Workloads.Game.correlated_params
  in
  let r =
    peak (Workloads.Api.Region { safe = true }) Workloads.Game.correlated_params
  in
  check_bool "regions competitive when lifetimes correlate" true
    (float_of_int r < 1.7 *. float_of_int m)

let test_game_all_regions_deleted () =
  let api = quick_api () in
  ignore (Workloads.Game.run api Workloads.Game.default_params);
  match Workloads.Api.region_rstats api with
  | Some rs -> check "no live regions" 0 (Regions.Rstats.live_regions rs)
  | None -> Alcotest.fail "expected region stats"

let test_game_emulated_mode_works () =
  let api = quick_api ~mode:(Workloads.Api.Emulated Workloads.Api.Lea) () in
  let out = Workloads.Game.run api Workloads.Game.default_params in
  check "all spawned" (120 * 40) out.Workloads.Game.spawned;
  check "all freed at the end" 0
    (Alloc.Stats.live_bytes (Workloads.Api.requested_stats api))

(* ------------------------------------------------------------------ *)
(* Cross-allocator determinism: same program, same answer *)

let test_deterministic_across_modes (spec : Workloads.Workload.spec) () =
  let summaries =
    List.map
      (fun mode ->
        let api = Workloads.Api.create ~with_cache:false mode in
        spec.Workloads.Workload.run api Workloads.Workload.Quick)
      (Workloads.Workload.modes_for spec)
  in
  match summaries with
  | first :: rest ->
      List.iteri
        (fun i s ->
          check_str (Printf.sprintf "mode %d agrees" (i + 1)) first s)
        rest
  | [] -> Alcotest.fail "no modes"

(* ------------------------------------------------------------------ *)
(* Workload-level safety: all region deletions succeed, nothing leaks *)

let test_region_workloads_delete_everything () =
  List.iter
    (fun (spec : Workloads.Workload.spec) ->
      let api = quick_api () in
      ignore (spec.run api Workloads.Workload.Quick);
      match Workloads.Api.region_rstats api with
      | Some rs ->
          check
            (spec.Workloads.Workload.name ^ ": all regions deleted")
            0
            (Regions.Rstats.live_regions rs)
      | None -> Alcotest.fail "expected region stats")
    Workloads.Workload.all

let test_malloc_workloads_free_everything () =
  List.iter
    (fun name ->
      let spec = Workloads.Workload.find name in
      let api = quick_api ~mode:(Workloads.Api.Direct Workloads.Api.Lea) () in
      ignore (spec.Workloads.Workload.run api Workloads.Workload.Quick);
      check (name ^ ": no live bytes") 0
        (Alloc.Stats.live_bytes (Workloads.Api.requested_stats api)))
    [ "cfrac"; "grobner"; "tile"; "moss" ]

(* ------------------------------------------------------------------ *)
(* Api mode plumbing *)

let test_api_unsupported_ops () =
  let direct = quick_api ~mode:(Workloads.Api.Direct Workloads.Api.Sun) () in
  (match Workloads.Api.newregion direct with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let region = quick_api () in
  match Workloads.Api.malloc region 8 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_api_gc_free_is_logical () =
  let api = quick_api ~mode:(Workloads.Api.Direct Workloads.Api.Gc) () in
  Workloads.Api.with_frame api ~nslots:1 ~ptr_slots:[] (fun _fr ->
      let p = Workloads.Api.malloc api 40 in
      let c = Workloads.Api.cost api in
      let before = Sim.Cost.total_instrs c in
      Workloads.Api.free api p;
      check "free is compiled out" before (Sim.Cost.total_instrs c);
      check "but logically freed" 0
        (Alloc.Stats.live_bytes (Workloads.Api.requested_stats api)))

let test_api_emulation_overhead_tracked () =
  let api = quick_api ~mode:(Workloads.Api.Emulated Workloads.Api.Lea) () in
  Workloads.Api.with_frame api ~nslots:1 ~ptr_slots:[ 0 ] (fun fr ->
      let r = Workloads.Api.newregion api in
      Workloads.Api.set_local api fr 0 r;
      for _ = 1 to 10 do
        ignore (Workloads.Api.rstralloc api r 20)
      done;
      (* 12 for the region record + 8 per object *)
      check "overhead" (12 + (10 * 8)) (Workloads.Api.emulation_overhead_bytes api);
      ignore (Workloads.Api.deleteregion api fr 0);
      check "live after delete" 0
        (Alloc.Stats.live_bytes (Workloads.Api.requested_stats api)))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "workloads"
    [
      ( "bignum",
        [
          tc "roundtrip" `Quick test_bignum_roundtrip;
          tc "decimal" `Quick test_bignum_decimal;
          tc "arithmetic" `Quick test_bignum_arith_basics;
          tc "errors" `Quick test_bignum_errors;
          QCheck_alcotest.to_alcotest qcheck_bignum_matches_int;
          QCheck_alcotest.to_alcotest qcheck_bignum_isqrt;
          QCheck_alcotest.to_alcotest qcheck_bignum_decimal_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_bignum_gcd_properties;
        ] );
      ( "kernels",
        [
          tc "cfrac finds the factor" `Quick test_cfrac_finds_factor;
          tc "cfrac small-factor shortcut" `Quick test_cfrac_small_factor_shortcut;
          tc "grobner basis" `Quick test_grobner_basis_properties;
          tc "mudlle compiles" `Quick test_mudlle_compiles;
          tc "mudlle rejects Direct" `Quick test_mudlle_rejects_direct_mode;
          tc "lcc compiles" `Quick test_lcc_compiles;
          tc "tile boundaries" `Quick test_tile_finds_topic_boundaries;
          tc "moss plagiarised pair" `Quick test_moss_detects_plagiarised_pair;
          tc "game: random lifetimes defeat regions" `Quick
            test_game_random_lifetimes_defeat_regions;
          tc "game: correlated lifetimes fit regions" `Quick
            test_game_correlated_lifetimes_fit_regions;
          tc "game: every wave region deleted" `Quick
            test_game_all_regions_deleted;
          tc "game: emulated mode" `Quick test_game_emulated_mode_works;
        ] );
      ( "determinism",
        List.map
          (fun spec ->
            tc
              (spec.Workloads.Workload.name ^ " same answer in every mode")
              `Slow
              (test_deterministic_across_modes spec))
          Workloads.Workload.all );
      ( "hygiene",
        [
          tc "regions all deleted" `Quick test_region_workloads_delete_everything;
          tc "mallocs all freed" `Quick test_malloc_workloads_free_everything;
        ] );
      ( "api",
        [
          tc "unsupported ops rejected" `Quick test_api_unsupported_ops;
          tc "gc free is logical" `Quick test_api_gc_free_is_logical;
          tc "emulation overhead tracked" `Quick test_api_emulation_overhead_tracked;
        ] );
    ]
