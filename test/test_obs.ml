(* Tests for the observability layer: the event ring (wraparound and
   spill ordering), the time-series sampler's partition property, the
   Chrome trace_event export (golden file), and — the load-bearing
   invariant — that tracing never perturbs the simulated counts. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* {1 Ring} *)

let push_n ring n =
  for i = 0 to n - 1 do
    Obs.Ring.push ring ~kind:(i mod 14) ~time:i ~site:0 ~a:(i * 2) ~b:(i * 3)
  done

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:8 () in
  check_int "capacity rounded" 8 (Obs.Ring.capacity r);
  push_n r 20;
  check_int "length capped" 8 (Obs.Ring.length r);
  check_int "total counts everything" 20 (Obs.Ring.total r);
  check_int "dropped = overflow" 12 (Obs.Ring.dropped r);
  (* survivors are the newest 8, iterated oldest first *)
  let times = ref [] in
  Obs.Ring.iter r (fun ~kind:_ ~time ~site:_ ~a:_ ~b:_ ->
      times := time :: !times);
  Alcotest.(check (list int))
    "newest 8, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.rev !times)

let test_ring_capacity_rounding () =
  let r = Obs.Ring.create ~capacity:9 () in
  check_int "rounded up to power of two" 16 (Obs.Ring.capacity r)

let test_ring_sink_order () =
  let r = Obs.Ring.create ~capacity:8 () in
  let seen = ref [] in
  Obs.Ring.set_sink r
    (Some
       (fun ~kind:_ ~time ~site:_ ~a:_ ~b:_ -> seen := time :: !seen));
  push_n r 20;
  check_int "sink means no drops" 0 (Obs.Ring.dropped r);
  check_int "evictions already streamed" 12 (List.length !seen);
  Obs.Ring.drain r;
  check_int "drain empties the ring" 0 (Obs.Ring.length r);
  (* evictions + drain = the complete ordered stream *)
  Alcotest.(check (list int))
    "full stream in order"
    (List.init 20 (fun i -> i))
    (List.rev !seen)

(* {1 Spill file} *)

let with_tmp_file f =
  let path = Filename.temp_file "obs-test" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_spill_roundtrip () =
  with_tmp_file (fun path ->
      let oc = open_out_bin path in
      let r = Obs.Ring.create ~capacity:4 () in
      Obs.Ring.set_sink r (Some (Obs.Spill.sink oc));
      push_n r 11;
      Obs.Ring.drain r;
      close_out oc;
      let records = ref [] in
      Obs.Spill.read_file path (fun ~kind ~time ~site ~a ~b ->
          records := (kind, time, site, a, b) :: !records);
      let records = List.rev !records in
      check_int "all records replayed" 11 (List.length records);
      List.iteri
        (fun i (kind, time, site, a, b) ->
          check_int "kind" (i mod 14) kind;
          check_int "time" i time;
          check_int "site" 0 site;
          check_int "a" (i * 2) a;
          check_int "b" (i * 3) b)
        records;
      (* header really is the documented magic *)
      let ic = open_in_bin path in
      let m = really_input_string ic (String.length Obs.Spill.magic) in
      close_in ic;
      check_str "magic" Obs.Spill.magic m)

(* {1 Event kinds} *)

let test_event_codes_roundtrip () =
  List.iter
    (fun e ->
      let i = Obs.Event.to_int e in
      check_bool "code in range" true (i >= 0 && i < 14);
      check_bool "of_int inverts to_int" true (Obs.Event.of_int i = e);
      check_bool "named" true (String.length (Obs.Event.name e) > 0))
    Obs.Event.all

(* {1 Sampler: the partition property} *)

(* Drive a sampler with synthetic monotone counters: whatever the
   increments and sampling cadence, the per-interval deltas must sum to
   the final cumulative counters, and sample times must be strictly
   increasing.  This is the property that makes the heap time-series an
   exact decomposition of the end-of-run totals. *)
let probe_of_cum c =
  {
    Obs.Sampler.base_instrs = c;
    mem_instrs = 2 * c;
    read_stalls = 3 * c;
    write_stalls = c / 2;
    live_bytes = c mod 4096;
    os_bytes = c - (c mod 4096);
    l1_hits = 5 * c;
    l1_misses = c / 3;
    l2_misses = c / 7;
    stores = 4 * c;
  }

let sampler_partition_prop (interval, steps) =
  let s = Obs.Sampler.create ~interval () in
  let now = ref 0 and cum = ref 0 in
  List.iter
    (fun (dt, dc) ->
      now := !now + dt;
      cum := !cum + dc;
      if Obs.Sampler.due s ~now:!now then
        Obs.Sampler.record s ~now:!now (probe_of_cum !cum))
    steps;
  Obs.Sampler.finish s ~now:!now (probe_of_cum !cum);
  let final = probe_of_cum !cum in
  let sum = ref Obs.Sampler.zero_probe in
  let prev = ref Obs.Sampler.zero_probe in
  let last_cycles = ref (-1) in
  let monotone = ref true in
  Obs.Sampler.iter s (fun ~cycles p ->
      if cycles <= !last_cycles then monotone := false;
      last_cycles := cycles;
      let d = Obs.Sampler.sub p !prev in
      prev := p;
      let open Obs.Sampler in
      sum :=
        {
          base_instrs = !sum.base_instrs + d.base_instrs;
          mem_instrs = !sum.mem_instrs + d.mem_instrs;
          read_stalls = !sum.read_stalls + d.read_stalls;
          write_stalls = !sum.write_stalls + d.write_stalls;
          live_bytes = !sum.live_bytes + d.live_bytes;
          os_bytes = !sum.os_bytes + d.os_bytes;
          l1_hits = !sum.l1_hits + d.l1_hits;
          l1_misses = !sum.l1_misses + d.l1_misses;
          l2_misses = !sum.l2_misses + d.l2_misses;
          stores = !sum.stores + d.stores;
        });
  !monotone && !sum = final

let sampler_case_gen =
  QCheck.make
    ~print:(fun (interval, steps) ->
      Printf.sprintf "interval=%d steps=%d" interval (List.length steps))
    QCheck.Gen.(
      pair
        (int_range 1 500)
        (list_size (int_range 1 200) (pair (int_range 0 300) (int_range 0 999))))

let sampler_partition_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"interval deltas partition the totals"
       sampler_case_gen sampler_partition_prop)

let test_sampler_finish_idempotent_at_now () =
  let s = Obs.Sampler.create ~interval:100 () in
  Obs.Sampler.record s ~now:0 (probe_of_cum 0);
  Obs.Sampler.finish s ~now:42 (probe_of_cum 7);
  let n = Obs.Sampler.length s in
  Obs.Sampler.finish s ~now:42 (probe_of_cum 7);
  check_int "no duplicate closing sample" n (Obs.Sampler.length s)

(* {1 Golden Chrome JSON}

   A tiny deterministic scenario (manual clock and probe) rendered to
   the exact bytes Perfetto / chrome://tracing consume.  Any format
   drift — field order, escaping, the metadata preamble, the counter
   rows — fails this test. *)

let golden_scenario () =
  let tr = Obs.Tracer.create ~capacity:64 ~sample_interval:100 () in
  let now = ref 0 in
  Obs.Tracer.set_clock tr (fun () -> !now);
  let probe = ref Obs.Sampler.zero_probe in
  Obs.Tracer.set_probe tr (fun () -> !probe);
  Obs.Tracer.phase tr "boot" (fun () ->
      now := 10;
      Obs.Tracer.malloc tr ~addr:4096 ~bytes:32;
      Obs.Tracer.site tr "fill" (fun () ->
          now := 120;
          probe :=
            { Obs.Sampler.zero_probe with base_instrs = 50; live_bytes = 32;
              os_bytes = 4096 };
          Obs.Tracer.barrier tr ~addr:4100 ~hinted:false);
      now := 250;
      probe :=
        { Obs.Sampler.zero_probe with base_instrs = 200; live_bytes = 0;
          os_bytes = 4096 };
      Obs.Tracer.free tr ~addr:4096);
  Obs.Tracer.finish tr;
  tr

let golden_json =
  {|{"displayTimeUnit":"ms","otherData":{"generator":"regions-repro/obs"},"traceEvents":[
{"name":"process_name","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"simulated UltraSparc-I"}},
{"name":"thread_name","cat":"__metadata","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"mutator"}},
{"name":"boot","cat":"phase","ph":"B","ts":0,"pid":1,"tid":1},
{"name":"malloc","cat":"alloc","ph":"i","ts":10,"pid":1,"tid":1,"s":"t","args":{"addr":4096,"bytes":32,"site":"boot"}},
{"name":"fill","cat":"site","ph":"B","ts":10,"pid":1,"tid":1},
{"name":"barrier","cat":"refcount","ph":"i","ts":120,"pid":1,"tid":1,"s":"t","args":{"addr":4100,"hinted":0}},
{"name":"fill","cat":"site","ph":"E","ts":120,"pid":1,"tid":1},
{"name":"free","cat":"alloc","ph":"i","ts":250,"pid":1,"tid":1,"s":"t","args":{"addr":4096,"site":"boot"}},
{"name":"boot","cat":"phase","ph":"E","ts":250,"pid":1,"tid":1},
{"name":"heap","cat":"sample","ph":"C","ts":0,"pid":1,"tid":1,"args":{"live_bytes":0,"os_bytes":0}},
{"name":"stalls","cat":"sample","ph":"C","ts":0,"pid":1,"tid":1,"args":{"read":0,"write":0}},
{"name":"cache_misses","cat":"sample","ph":"C","ts":0,"pid":1,"tid":1,"args":{"l1":0,"l2":0}},
{"name":"heap","cat":"sample","ph":"C","ts":120,"pid":1,"tid":1,"args":{"live_bytes":32,"os_bytes":4096}},
{"name":"stalls","cat":"sample","ph":"C","ts":120,"pid":1,"tid":1,"args":{"read":0,"write":0}},
{"name":"cache_misses","cat":"sample","ph":"C","ts":120,"pid":1,"tid":1,"args":{"l1":0,"l2":0}},
{"name":"heap","cat":"sample","ph":"C","ts":250,"pid":1,"tid":1,"args":{"live_bytes":0,"os_bytes":4096}},
{"name":"stalls","cat":"sample","ph":"C","ts":250,"pid":1,"tid":1,"args":{"read":0,"write":0}},
{"name":"cache_misses","cat":"sample","ph":"C","ts":250,"pid":1,"tid":1,"args":{"l1":0,"l2":0}}
]}
|}

let test_chrome_json_golden () =
  let tr = golden_scenario () in
  check_str "exact bytes" golden_json (Obs.Export.chrome_json tr)

let test_golden_scenario_profile () =
  let tr = golden_scenario () in
  (* fill ran cycles 10..120 with base_instrs going 0 -> 50; boot gets
     the rest, net of the nested span. *)
  let stat name =
    List.find (fun s -> s.Obs.Tracer.name = name) (Obs.Tracer.sites tr)
  in
  check_int "fill self base instrs" 50 (stat "fill").Obs.Tracer.base_instrs;
  check_int "boot self base instrs" 150 (stat "boot").Obs.Tracer.base_instrs;
  check_int "boot tagged the malloc" 32 (stat "boot").Obs.Tracer.bytes;
  let folded = Obs.Tracer.folded tr in
  check_bool "nested folded path" true
    (List.mem_assoc "boot;fill" folded);
  check_bool "toplevel entry present" true
    (List.mem_assoc "(toplevel)" folded)

let test_json_escape () =
  check_str "quotes, backslash, control" {|a\"b\\c\nd\u0001|}
    (Obs.Export.json_escape "a\"b\\c\nd\001")

(* {1 Tracing a real run} *)

let quick = Workloads.Workload.Quick
let cfrac = Workloads.Workload.find "cfrac"
let moss = Workloads.Workload.find "moss"
let region_safe = Workloads.Api.Region { safe = true }

let test_event_stream_ordered () =
  let tr = Obs.Tracer.create () in
  let (_ : Workloads.Results.t) =
    Workloads.Workload.run_collect ~tracer:tr cfrac region_safe quick
  in
  let ring = Obs.Tracer.ring tr in
  check_bool "events recorded" true (Obs.Ring.total ring > 0);
  let last = ref (-1) and ordered = ref true and n = ref 0 in
  Obs.Ring.iter ring (fun ~kind ~time ~site ~a:_ ~b:_ ->
      incr n;
      if time < !last then ordered := false;
      last := time;
      check_bool "kind decodes" true
        (String.length (Obs.Event.name (Obs.Event.of_int kind)) > 0);
      check_bool "site interned" true
        (site >= 0 && site <= Obs.Tracer.nsites tr));
  check_bool "timestamps nondecreasing" true !ordered;
  check_int "iter covers the buffer" (Obs.Ring.length ring) !n;
  (* the sampler observed the run too *)
  check_bool "samples taken" true (Obs.Sampler.length (Obs.Tracer.sampler tr) > 1)

(* The invariant everything else rests on: simulated counts are
   byte-identical whether tracing is compiled in but disabled, or fully
   enabled with sampling and a spill sink. *)
let results_line ?tracer spec mode =
  Fmt.str "%a" Workloads.Results.pp
    (Workloads.Workload.run_collect ?tracer spec mode quick)

let check_neutral spec mode =
  let baseline = results_line spec mode in
  let disabled =
    results_line ~tracer:(Obs.Tracer.create ~enabled:false ()) spec mode
  in
  check_str "disabled tracer is count-neutral" baseline disabled;
  with_tmp_file (fun path ->
      let oc = open_out_bin path in
      let tr = Obs.Tracer.create ~capacity:1024 ~sample_interval:10_000 () in
      Obs.Ring.set_sink (Obs.Tracer.ring tr) (Some (Obs.Spill.sink oc));
      let enabled = results_line ~tracer:tr spec mode in
      Obs.Ring.drain (Obs.Tracer.ring tr);
      close_out oc;
      check_str "enabled tracer is count-neutral" baseline enabled;
      check_bool "yet it really traced" true
        (Obs.Ring.total (Obs.Tracer.ring tr) > 0))

let test_neutrality_region () = check_neutral cfrac region_safe
let test_neutrality_gc () = check_neutral cfrac (Workloads.Api.Direct Gc)

(* {1 Trace artefacts on disk} *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let check_trace_files spec mode =
  let out = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obs-artefacts-%d" (Unix.getpid ())) in
  Fun.protect ~finally:(fun () -> try rm_rf out with Sys_error _ -> ())
    (fun () ->
      let _r, tr, files =
        Harness.Tracefiles.run_traced ~sample_cycles:10_000 ~out spec mode quick
      in
      List.iter
        (fun p -> check_bool (Filename.basename p ^ " exists") true (Sys.file_exists p))
        [ files.Harness.Tracefiles.events_bin; files.trace_json;
          files.heap_csv; files.sites_txt; files.folded ];
      let json = read_file files.Harness.Tracefiles.trace_json in
      check_bool "json header" true
        (String.length json > 2 && String.sub json 0 1 = "{");
      check_bool "json trailer" true (contains json "\n]}");
      check_bool "json has trace events" true (contains json {|"traceEvents":[|});
      let bin = read_file files.Harness.Tracefiles.events_bin in
      check_str "spill magic" Obs.Spill.magic
        (String.sub bin 0 (String.length Obs.Spill.magic));
      check_bool "spill holds whole records" true
        ((String.length bin - String.length Obs.Spill.magic)
         mod Obs.Spill.record_bytes = 0);
      let csv = read_file files.Harness.Tracefiles.heap_csv in
      check_bool "csv header" true
        (contains csv "cycles,base_instrs");
      check_bool "csv has rows" true
        (List.length (String.split_on_char '\n' (String.trim csv)) > 1);
      let folded = read_file files.Harness.Tracefiles.folded in
      check_bool "folded nonempty" true (String.length (String.trim folded) > 0);
      (* the spill file replays to the same number of events the ring
         counted over the whole run *)
      let n = ref 0 in
      Obs.Spill.read_file files.Harness.Tracefiles.events_bin
        (fun ~kind:_ ~time:_ ~site:_ ~a:_ ~b:_ -> incr n);
      check_int "spill is the complete stream"
        (Obs.Ring.total (Obs.Tracer.ring tr)) !n)

let test_trace_files_cfrac () = check_trace_files cfrac region_safe
let test_trace_files_moss () =
  check_trace_files moss (Workloads.Api.Direct Lea)

(* {1 Metrics} *)

let test_metrics_registry () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter r ~labels:[ ("col", "lea") ] "ops_total" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 4;
  (* registration is idempotent: the same name+labels is the same cell *)
  Obs.Metrics.inc (Obs.Metrics.counter r ~labels:[ ("col", "lea") ] "ops_total");
  Obs.Metrics.set (Obs.Metrics.gauge r "rate") 2.5;
  let h = Obs.Metrics.histogram r "wall_ms" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 4; 1024 ];
  match Obs.Metrics.snapshot r with
  | [ ops; rate; wall ] -> (
      check_str "sorted: counter first" "ops_total" ops.Obs.Metrics.name;
      check_bool "labels kept" true
        (ops.Obs.Metrics.labels = [ ("col", "lea") ]);
      (match ops.Obs.Metrics.value with
      | Obs.Metrics.Counter_v n -> check_int "counter total" 6 n
      | _ -> Alcotest.fail "ops_total is not a counter");
      (match rate.Obs.Metrics.value with
      | Obs.Metrics.Gauge_v v -> Alcotest.(check (float 0.0)) "gauge" 2.5 v
      | _ -> Alcotest.fail "rate is not a gauge");
      match wall.Obs.Metrics.value with
      | Obs.Metrics.Histogram_v { buckets; sum; count } ->
          check_int "histogram count" 6 count;
          check_int "histogram sum" 1034 sum;
          check_bool "non-empty log buckets, ascending" true
            (buckets = [ (0, 1); (1, 1); (2, 2); (3, 1); (11, 1) ])
      | _ -> Alcotest.fail "wall_ms is not a histogram")
  | l -> Alcotest.failf "expected 3 series, got %d" (List.length l)

let test_metrics_disabled_noop () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "n" in
  Obs.Metrics.inc c;
  Obs.Metrics.add c 7;
  let h = Obs.Metrics.histogram r "h" in
  Obs.Metrics.observe h 42;
  List.iter
    (fun (s : Obs.Metrics.series) ->
      match s.value with
      | Obs.Metrics.Counter_v n -> check_int "counter untouched" 0 n
      | Obs.Metrics.Histogram_v { count; _ } ->
          check_int "histogram untouched" 0 count
      | Obs.Metrics.Gauge_v _ -> ())
    (Obs.Metrics.snapshot r)

let test_metrics_kind_mismatch () =
  let r = Obs.Metrics.create () in
  let (_ : Obs.Metrics.counter) = Obs.Metrics.counter r "x" in
  match Obs.Metrics.gauge r "x" with
  | _ -> Alcotest.fail "re-registering under another kind must raise"
  | exception Invalid_argument _ -> ()

let prop_bucket_boundaries =
  QCheck.Test.make ~name:"histogram bucket b covers [2^(b-1), 2^b)"
    ~count:1000
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let b = Obs.Metrics.bucket_of v in
      if v = 0 then b = 0
      else b >= 1 && 1 lsl (b - 1) <= v && v < 1 lsl b)

(* The load-bearing invariant, same as for tracing: enabling the global
   registry changes no simulated count anywhere in a matrix row. *)
let test_metrics_byte_identity_row () =
  let render () =
    List.map
      (fun mode ->
        Format.asprintf "%a" Workloads.Results.pp
          (Workloads.Workload.run_collect cfrac mode quick))
      (Workloads.Workload.modes_for cfrac)
  in
  let off = render () in
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  let on =
    Fun.protect
      ~finally:(fun () -> Obs.Metrics.set_enabled Obs.Metrics.default false)
      render
  in
  List.iter2 (check_str "cell bytes identical with metrics on") off on

(* {1 Timeline} *)

let test_timeline_bounded_monotone () =
  let tl = Obs.Timeline.create ~capacity:8 () in
  let notes = ref 0 in
  Obs.Timeline.set_probe tl (fun () ->
      (!notes, 2 * !notes, 3 * !notes, 4 * !notes));
  for _ = 1 to 1000 do
    incr notes;
    Obs.Timeline.note tl
  done;
  Obs.Timeline.finish tl;
  let n = Obs.Timeline.length tl in
  check_bool "bounded by capacity" true (n <= 8);
  check_bool "compaction keeps half" true (n >= 4);
  let prev = ref 0 and last = ref 0 in
  Obs.Timeline.iter tl
    (fun ~events ~live_allocs ~live_bytes:_ ~held_bytes:_ ~os_bytes:_ ->
      check_bool "event clock strictly increases" true (events > !prev);
      prev := events;
      last := events;
      check_int "probe ran at its own event" events live_allocs);
  check_int "curve ends on the end state" 1000 !last;
  Obs.Timeline.finish tl;
  check_int "finish is idempotent" n (Obs.Timeline.length tl)

let test_timeline_csv () =
  let tl = Obs.Timeline.create ~capacity:4 () in
  Obs.Timeline.set_probe tl (fun () -> (1, 10, 16, 4096));
  Obs.Timeline.note tl;
  Obs.Timeline.finish tl;
  check_str "derived fragmentation columns"
    ("events,live_allocs,live_bytes,held_bytes,os_bytes,internal_frag_bytes,external_frag_bytes,mapped_pages\n"
   ^ "1,1,10,16,4096,6,4080,1\n")
    (Obs.Timeline.to_csv tl)

(* {1 Parameterized Chrome export} *)

let test_chrome_json_custom_process () =
  let tr = golden_scenario () in
  let iter f =
    Obs.Ring.iter (Obs.Tracer.ring tr) (fun ~kind ~time ~site ~a ~b ->
        f ~kind ~time ~site ~a ~b)
  in
  let j =
    Obs.Export.chrome_json_of ~pid:7 ~process_name:"column A"
      ~thread_name:"replayer" ~process_sort_index:7 tr iter
  in
  check_bool "events carry the pid" true (contains j "\"pid\":7");
  check_bool "process name" true (contains j "\"name\":\"column A\"");
  check_bool "thread name" true (contains j "\"name\":\"replayer\"");
  check_bool "sort index record" true (contains j "\"sort_index\":7");
  check_bool "default export omits sort index" false
    (contains (Obs.Export.chrome_json tr) "process_sort_index")

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound drops oldest" `Quick
            test_ring_wraparound;
          Alcotest.test_case "capacity rounds to power of two" `Quick
            test_ring_capacity_rounding;
          Alcotest.test_case "sink preserves the full ordered stream" `Quick
            test_ring_sink_order;
        ] );
      ( "spill",
        [ Alcotest.test_case "roundtrip" `Quick test_spill_roundtrip ] );
      ( "events",
        [
          Alcotest.test_case "codes roundtrip" `Quick
            test_event_codes_roundtrip;
        ] );
      ( "sampler",
        [
          sampler_partition_test;
          Alcotest.test_case "finish is idempotent at a cycle" `Quick
            test_sampler_finish_idempotent_at_now;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, log histograms" `Quick
            test_metrics_registry;
          Alcotest.test_case "disabled registry is inert" `Quick
            test_metrics_disabled_noop;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_metrics_kind_mismatch;
          QCheck_alcotest.to_alcotest prop_bucket_boundaries;
          Alcotest.test_case "matrix row byte-identical with metrics on"
            `Quick test_metrics_byte_identity_row;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "bounded ring, monotone event clock" `Quick
            test_timeline_bounded_monotone;
          Alcotest.test_case "csv fragmentation columns" `Quick
            test_timeline_csv;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json golden file" `Quick
            test_chrome_json_golden;
          Alcotest.test_case "parameterized process metadata" `Quick
            test_chrome_json_custom_process;
          Alcotest.test_case "golden scenario profile attribution" `Quick
            test_golden_scenario_profile;
          Alcotest.test_case "json escaping" `Quick test_json_escape;
        ] );
      ( "tracing a run",
        [
          Alcotest.test_case "event stream is time-ordered" `Quick
            test_event_stream_ordered;
          Alcotest.test_case "count-neutral under regions" `Quick
            test_neutrality_region;
          Alcotest.test_case "count-neutral under the collector" `Quick
            test_neutrality_gc;
        ] );
      ( "artefacts",
        [
          Alcotest.test_case "cfrac/region family valid" `Quick
            test_trace_files_cfrac;
          Alcotest.test_case "moss/lea family valid" `Quick
            test_trace_files_moss;
        ] );
    ]
