(* Tests for the Boehm-Weiser-style conservative collector. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type env = {
  mem : Sim.Memory.t;
  mut : Regions.Mutator.t;
  alloc : Alloc.Allocator.t;
  gc : Gcsim.Boehm.t;
}

let fresh ?trigger_min_bytes () =
  let mem = Sim.Memory.create ~with_cache:false () in
  let mut = Regions.Mutator.create mem in
  let alloc, gc =
    Gcsim.Boehm.create ?trigger_min_bytes
      ~roots:(fun f -> Regions.Mutator.iter_roots mut f)
      mem
  in
  { mem; mut; alloc; gc }

let test_alloc_zeroed () =
  let e = fresh () in
  let p = e.alloc.Alloc.Allocator.malloc 40 in
  for i = 0 to 9 do
    check "zeroed" 0 (Sim.Memory.load e.mem (p + (i * 4)))
  done;
  check_bool "live" true (Gcsim.Boehm.is_live e.gc p);
  check "usable covers class" 48 (e.alloc.usable_size p)

let test_free_is_noop () =
  let e = fresh () in
  let p = e.alloc.Alloc.Allocator.malloc 16 in
  e.alloc.free p;
  check_bool "still live after free" true (Gcsim.Boehm.is_live e.gc p)

let test_reachable_survive_garbage_collected () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      (* A linked list rooted in a frame slot survives; unrooted
         objects die. *)
      let rec build n tail =
        if n = 0 then tail
        else begin
          let p = e.alloc.Alloc.Allocator.malloc 16 in
          Sim.Memory.store e.mem p n;
          Sim.Memory.store e.mem (p + 4) tail;
          build (n - 1) p
        end
      in
      let list = build 50 0 in
      Regions.Mutator.set_local e.mut fr 0 list;
      let garbage = Array.init 100 (fun _ -> e.alloc.malloc 16) in
      Gcsim.Boehm.collect e.gc;
      (* Walk the list: all nodes alive with intact contents. *)
      let rec walk p n =
        if p <> 0 then begin
          check_bool "node live" true (Gcsim.Boehm.is_live e.gc p);
          check "node value" n (Sim.Memory.load e.mem p);
          walk (Sim.Memory.load e.mem (p + 4)) (n + 1)
        end
        else check "walked all" 51 n
      in
      walk list 1;
      let dead =
        Array.to_list garbage
        |> List.filter (fun p -> not (Gcsim.Boehm.is_live e.gc p))
      in
      (* Conservative collection may pin a few by accident, but the
         bulk must be reclaimed. *)
      check_bool "most garbage reclaimed" true (List.length dead >= 95))

let test_heap_pointers_traced () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let a = e.alloc.Alloc.Allocator.malloc 16 in
      let b = e.alloc.malloc 16 in
      let c = e.alloc.malloc 16 in
      Sim.Memory.store e.mem a b (* a -> b *);
      Sim.Memory.store e.mem b c (* b -> c *);
      Regions.Mutator.set_local e.mut fr 0 a;
      Gcsim.Boehm.collect e.gc;
      check_bool "transitively reachable c live" true (Gcsim.Boehm.is_live e.gc c))

let test_global_roots () =
  let e = fresh () in
  let p = e.alloc.Alloc.Allocator.malloc 24 in
  Sim.Memory.store e.mem (Regions.Mutator.global_addr e.mut 5) p;
  Gcsim.Boehm.collect e.gc;
  check_bool "global-rooted object live" true (Gcsim.Boehm.is_live e.gc p)

let test_interior_pointers_pin () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let p = e.alloc.Alloc.Allocator.malloc 64 in
      (* Only an interior pointer survives — conservative GC must pin. *)
      Regions.Mutator.set_local e.mut fr 0 (p + 20);
      Gcsim.Boehm.collect e.gc;
      check_bool "interior pointer pins object" true (Gcsim.Boehm.is_live e.gc p))

let test_memory_reused_after_collection () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun _fr ->
      for _ = 1 to 200 do
        ignore (e.alloc.Alloc.Allocator.malloc 32)
      done;
      let os = Alloc.Stats.os_bytes e.alloc.stats in
      Gcsim.Boehm.collect e.gc;
      (* Everything was garbage; new allocations must reuse the heap. *)
      for _ = 1 to 200 do
        ignore (e.alloc.Alloc.Allocator.malloc 32)
      done;
      check "heap not grown" os (Alloc.Stats.os_bytes e.alloc.stats))

let test_automatic_trigger () =
  let e = fresh ~trigger_min_bytes:8192 () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun _fr ->
      for _ = 1 to 3000 do
        ignore (e.alloc.Alloc.Allocator.malloc 48)
      done;
      check_bool "collections happened" true (Gcsim.Boehm.collections e.gc > 1);
      (* Dead-on-arrival allocations: the heap stays far below the
         144 KB total allocated. *)
      check_bool "heap bounded" true (Gcsim.Boehm.heap_bytes e.gc < 100_000))

let test_large_objects () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:2 ~ptr_slots:[] (fun fr ->
      let big = e.alloc.Alloc.Allocator.malloc 10_000 in
      Regions.Mutator.set_local e.mut fr 0 big;
      Sim.Memory.store e.mem (big + 9996) 3;
      Gcsim.Boehm.collect e.gc;
      check_bool "rooted large object live" true (Gcsim.Boehm.is_live e.gc big);
      check "contents survive" 3 (Sim.Memory.load e.mem (big + 9996));
      Regions.Mutator.set_local e.mut fr 0 0;
      Gcsim.Boehm.collect e.gc;
      check_bool "unrooted large object dies" false (Gcsim.Boehm.is_live e.gc big);
      (* Its pages are reused for the next same-size allocation. *)
      let os = Alloc.Stats.os_bytes e.alloc.stats in
      let big2 = e.alloc.malloc 10_000 in
      check "pages reused" big big2;
      check "no growth" os (Alloc.Stats.os_bytes e.alloc.stats))

let test_gc_cost_charged () =
  let e = fresh () in
  let c = Sim.Memory.cost e.mem in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let p = e.alloc.Alloc.Allocator.malloc 100 in
      Regions.Mutator.set_local e.mut fr 0 p;
      let before = Sim.Cost.alloc_instrs c in
      let base_before = Sim.Cost.base_instrs c in
      Gcsim.Boehm.collect e.gc;
      check_bool "gc work charged to alloc account" true
        (Sim.Cost.alloc_instrs c > before + 50);
      check "no base charge" base_before (Sim.Cost.base_instrs c))

let test_no_collection_below_threshold () =
  let e = fresh ~trigger_min_bytes:1_000_000 () in
  for _ = 1 to 500 do
    ignore (e.alloc.Alloc.Allocator.malloc 32)
  done;
  check "no automatic collection yet" 0 (Gcsim.Boehm.collections e.gc)

let test_usable_size_classes () =
  let e = fresh () in
  let p = e.alloc.Alloc.Allocator.malloc 1 in
  check "1 byte -> 16-byte class" 16 (e.alloc.usable_size p);
  let q = e.alloc.malloc 17 in
  check "17 bytes -> 32-byte class" 32 (e.alloc.usable_size q);
  let r = e.alloc.malloc 512 in
  check "512 bytes -> 512 class" 512 (e.alloc.usable_size r);
  let big = e.alloc.malloc 600 in
  check "large rounded to words" 600 (e.alloc.usable_size big)

let test_large_interior_pointer_pins () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let big = e.alloc.Alloc.Allocator.malloc 9000 in
      (* only a pointer into the middle of the second page survives *)
      Regions.Mutator.set_local e.mut fr 0 (big + 5000);
      Gcsim.Boehm.collect e.gc;
      check_bool "interior pointer pins the large object" true
        (Gcsim.Boehm.is_live e.gc big))

let test_sweep_updates_stats () =
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun _fr ->
      for _ = 1 to 100 do
        ignore (e.alloc.Alloc.Allocator.malloc 24)
      done;
      let live_before = Alloc.Stats.live_bytes e.alloc.stats in
      check_bool "live tracked" true (live_before >= 2400);
      Gcsim.Boehm.collect e.gc;
      check "sweep logically frees the garbage" 0
        (Alloc.Stats.live_bytes e.alloc.stats))

let test_self_referential_cycle_collected () =
  (* Tracing collects cycles — the very thing plain reference counting
     cannot do (and which regions handle by making cycles
     intra-region). *)
  let e = fresh () in
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let a = e.alloc.Alloc.Allocator.malloc 16 in
      let b = e.alloc.malloc 16 in
      Sim.Memory.store e.mem a b;
      Sim.Memory.store e.mem b a;
      Regions.Mutator.set_local e.mut fr 0 a;
      Gcsim.Boehm.collect e.gc;
      check_bool "cycle kept while rooted" true
        (Gcsim.Boehm.is_live e.gc a && Gcsim.Boehm.is_live e.gc b);
      Regions.Mutator.set_local e.mut fr 0 0;
      Gcsim.Boehm.collect e.gc;
      check_bool "cycle collected when unrooted" true
        ((not (Gcsim.Boehm.is_live e.gc a)) && not (Gcsim.Boehm.is_live e.gc b)))

let test_check_heap_clean_across_collections () =
  let e = fresh ~trigger_min_bytes:4096 () in
  e.alloc.Alloc.Allocator.check_heap ();
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      let keep = e.alloc.malloc 64 in
      Regions.Mutator.set_local e.mut fr 0 keep;
      for i = 1 to 300 do
        ignore (e.alloc.Alloc.Allocator.malloc (8 + (i mod 480)))
      done;
      e.alloc.check_heap ();
      Gcsim.Boehm.collect e.gc;
      (* After a sweep the free lists are at their fullest. *)
      e.alloc.check_heap ())

let test_check_heap_detects_freelist_corruption () =
  let e = fresh () in
  let p = e.alloc.Alloc.Allocator.malloc 16 in
  let q = e.alloc.malloc 16 in
  ignore q;
  Gcsim.Boehm.collect e.gc;
  (* Nothing is rooted, so [p]'s class free list is populated; plant a
     misaligned link in the swept object. *)
  check_bool "object swept" true (not (Gcsim.Boehm.is_live e.gc p));
  Sim.Memory.poke e.mem p (p + 2);
  match e.alloc.check_heap () with
  | () -> Alcotest.fail "corrupted free list not detected"
  | exception Failure _ -> ()

let test_oom_leaves_heap_consistent () =
  let e = fresh () in
  let keep = e.alloc.Alloc.Allocator.malloc 40 in
  Sim.Memory.store e.mem (keep + 36) 0x5151;
  Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun fr ->
      Regions.Mutator.set_local e.mut fr 0 keep;
      let budget = ref 16 in
      Sim.Memory.set_oom_hook e.mem
        (Some
           (fun n ->
             budget := !budget - n;
             !budget >= 0));
      let faulted = ref false in
      (try
         for _ = 1 to 10_000 do
           ignore (e.alloc.malloc 4000)
         done
       with Sim.Memory.Fault _ -> faulted := true);
      check_bool "allocation faulted under page budget" true !faulted;
      e.alloc.check_heap ();
      check "rooted block intact" 0x5151 (Sim.Memory.load e.mem (keep + 36));
      Sim.Memory.set_oom_hook e.mem None;
      check_bool "allocation recovers" true (e.alloc.malloc 4000 <> 0);
      e.alloc.check_heap ())

let qcheck_gc_soundness =
  (* Random object graphs: after collection, everything reachable from
     the roots is live and has intact contents. *)
  let gen = QCheck.(pair (int_bound 1000) (list (pair (int_bound 49) (int_bound 49)))) in
  QCheck.Test.make ~count:40 ~name:"reachability soundness on random graphs" gen
    (fun (seed, edges) ->
      let e = fresh ~trigger_min_bytes:4096 () in
      Regions.Mutator.with_frame e.mut ~nslots:2 ~ptr_slots:[] (fun fr ->
          let rng = Sim.Rng.create seed in
          let objs = Array.init 50 (fun i ->
              let p = e.alloc.Alloc.Allocator.malloc 24 in
              Sim.Memory.store e.mem (p + 20) (i lxor 0x77);
              p)
          in
          (* Random edges in the first two words. *)
          List.iter
            (fun (i, j) ->
              let slot = Sim.Rng.int rng 2 in
              Sim.Memory.store e.mem (objs.(i) + (slot * 4)) objs.(j))
            edges;
          (* Root object 0 only. *)
          Regions.Mutator.set_local e.mut fr 0 objs.(0);
          (* Compute reachability in the model. *)
          let reachable = Array.make 50 false in
          let index_of p =
            let rec go i = if i = 50 then None else if objs.(i) = p then Some i else go (i + 1) in
            go 0
          in
          let rec reach i =
            if not reachable.(i) then begin
              reachable.(i) <- true;
              for s = 0 to 1 do
                match index_of (Sim.Memory.peek e.mem (objs.(i) + (s * 4))) with
                | Some j -> reach j
                | None -> ()
              done
            end
          in
          reach 0;
          Gcsim.Boehm.collect e.gc;
          let sound = ref true in
          Array.iteri
            (fun i p ->
              if reachable.(i) then begin
                if not (Gcsim.Boehm.is_live e.gc p) then sound := false;
                if Sim.Memory.peek e.mem (p + 20) <> i lxor 0x77 then sound := false
              end)
            objs;
          !sound))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "gcsim"
    [
      ( "boehm",
        [
          tc "alloc zeroed" `Quick test_alloc_zeroed;
          tc "free is noop" `Quick test_free_is_noop;
          tc "reachable survive, garbage collected" `Quick
            test_reachable_survive_garbage_collected;
          tc "heap pointers traced" `Quick test_heap_pointers_traced;
          tc "global roots" `Quick test_global_roots;
          tc "interior pointers pin" `Quick test_interior_pointers_pin;
          tc "memory reused after collection" `Quick
            test_memory_reused_after_collection;
          tc "automatic trigger" `Quick test_automatic_trigger;
          tc "large objects" `Quick test_large_objects;
          tc "gc cost charged" `Quick test_gc_cost_charged;
          tc "no collection below threshold" `Quick
            test_no_collection_below_threshold;
          tc "usable size classes" `Quick test_usable_size_classes;
          tc "large interior pointer pins" `Quick
            test_large_interior_pointer_pins;
          tc "sweep updates stats" `Quick test_sweep_updates_stats;
          tc "cycles collected" `Quick test_self_referential_cycle_collected;
          tc "check_heap clean across collections" `Quick
            test_check_heap_clean_across_collections;
          tc "check_heap detects free-list corruption" `Quick
            test_check_heap_detects_freelist_corruption;
          tc "OOM leaves heap consistent" `Quick test_oom_leaves_heap_consistent;
          QCheck_alcotest.to_alcotest qcheck_gc_soundness;
        ] );
    ]
