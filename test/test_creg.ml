(* Tests for the creg language: lexer, parser, typechecker, compiler
   and VM, including the paper's Figure 3 list-copy program. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))

let run ?safe src = fst (Creg.Vm.run_source ?safe src)

let output ?safe src = (run ?safe src).Creg.Vm.output
let exit_value ?safe src = (run ?safe src).Creg.Vm.exit_value

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basics () =
  let toks = Creg.Lexer.tokenize "x12 -> @ * != <= // comment\n 42" in
  let kinds = List.map fst toks in
  Alcotest.(check bool)
    "token stream" true
    (kinds
    = [
        Creg.Lexer.IDENT "x12";
        Creg.Lexer.ARROW;
        Creg.Lexer.AT;
        Creg.Lexer.STAR;
        Creg.Lexer.NE;
        Creg.Lexer.LE;
        Creg.Lexer.INT 42;
        Creg.Lexer.EOF;
      ])

let test_lexer_keywords_vs_idents () =
  let toks = Creg.Lexer.tokenize "region regions" in
  match List.map fst toks with
  | [ Creg.Lexer.KW "region"; Creg.Lexer.IDENT "regions"; Creg.Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "keyword prefix must not swallow identifiers"

let test_lexer_positions () =
  let toks = Creg.Lexer.tokenize "a\n  b" in
  match toks with
  | [ (_, p1); (_, p2); _ ] ->
      check "line 1" 1 p1.Creg.Ast.line;
      check "line 2" 2 p2.Creg.Ast.line;
      check "col 3" 3 p2.Creg.Ast.col
  | _ -> Alcotest.fail "expected two tokens"

let test_lexer_block_comment () =
  let toks = Creg.Lexer.tokenize "1 /* multi\nline */ 2" in
  check "tokens" 3 (List.length toks)

let test_lexer_errors () =
  (match Creg.Lexer.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Creg.Lexer.Error (_, _) -> ());
  match Creg.Lexer.tokenize "/* unterminated" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Creg.Lexer.Error (_, _) -> ()

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parser_precedence () =
  let e = Creg.Parser.parse_expr "1 + 2 * 3 == 7" in
  match e.Creg.Ast.desc with
  | Creg.Ast.Binop (Creg.Ast.Eq, _, _) -> ()
  | _ -> Alcotest.fail "== must bind loosest"

let test_parser_syntax_error () =
  match Creg.Parser.parse "int main() { return 1 + ; }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Creg.Parser.Error (_, _) -> ()

let test_parser_program_shapes () =
  let prog =
    Creg.Parser.parse
      "struct list { int i; struct list @next; };\n\
       struct list @g;\n\
       int f(int x, struct list @l) { return x; }\n\
       int main() { return 0; }"
  in
  check "four items" 4 (List.length prog)

(* ------------------------------------------------------------------ *)
(* Typechecker: every rule of section 3.1 *)

let type_error src =
  match Creg.Typecheck.check (Creg.Parser.parse src) with
  | _ -> Alcotest.fail "expected type error"
  | exception Creg.Typecheck.Error (_, _) -> ()

let type_ok src = ignore (Creg.Typecheck.check (Creg.Parser.parse src))

let test_ty_no_implicit_conversion () =
  (* @ and * are different types: no implicit conversion. *)
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s *q = p; return 0; }"

let test_ty_explicit_cast_allowed () =
  type_ok
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s *q = (struct s *) p; return 0; }"

let test_ty_region_ptr_must_be_initialised () =
  type_error "struct s { int x; };\nint main() { struct s @p; return 0; }";
  type_error "int main() { region r; return 0; }";
  (* ints may be uninitialised *)
  type_ok "int main() { int x; return x; }"

let test_ty_unbound_and_unknown () =
  type_error "int main() { return x; }";
  type_error "int main() { return f(); }";
  type_error "struct s { int x; };\nint main() { struct t @p = null; return 0; }"

let test_ty_field_errors () =
  type_error "struct s { int x; };\nint main() { int y; return y->x; }";
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     return p->nope; }"

let test_ty_call_arity_and_types () =
  type_error "int f(int x) { return x; }\nint main() { return f(); }";
  type_error
    "struct s { int x; };\nint f(struct s @p) { return 0; }\n\
     int main() { return f(3); }"

let test_ty_deleteregion_needs_region_var () =
  type_error "int main() { int x; return deleteregion(x); }";
  type_ok "int main() { region r = newregion(); return deleteregion(r); }"

let test_ty_condition_and_arith () =
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     if (p) { } return 0; }";
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     return p + 1; }"

let test_ty_pointer_comparison () =
  type_ok
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     if (p == null) { } if (p != p) { } return 0; }";
  (* Comparing @ with * requires a cast. *)
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s *q = (struct s *) p; if (p == q) { } return 0; }"

let test_ty_main_required () =
  type_error "int f() { return 0; }";
  type_error "void main() { }"

let test_ty_return_checks () =
  type_error "void f() { return 3; }\nint main() { return 0; }";
  type_error "int f() { return; }\nint main() { return 0; }";
  type_error
    "struct s { int x; };\nstruct s @f(region r) { return 3; }\n\
     int main() { return 0; }"

let test_ty_duplicates () =
  type_error "int main() { int x; int x; return 0; }";
  type_error "struct s { int x; int x; };\nint main() { return 0; }";
  type_error "int f() { return 0; }\nint f() { return 1; }\nint main() { return 0; }";
  (* shadowing in an inner block is fine *)
  type_ok "int main() { int x; if (1) { int x; x = 2; } return x; }"

(* ------------------------------------------------------------------ *)
(* Execution *)

let test_run_arith_and_control () =
  check "arith" 42 (exit_value "int main() { return 2 * 20 + 10 / 5; }");
  check "if" 1 (exit_value "int main() { if (2 > 1) { return 1; } return 2; }");
  check "while" 55
    (exit_value
       "int main() { int s; int i; s = 0; i = 1;\n\
        while (i <= 10) { s = s + i; i = i + 1; } return s; }")

let test_run_recursion () =
  check "fib" 89
    (exit_value
       "int fib(int n) { if (n < 2) { return 1; } return fib(n-1) + fib(n-2); }\n\
        int main() { return fib(10); }")

let test_run_print () =
  check_ints "print order" [ 1; 2; 3 ]
    (output "int main() { print(1); print(2); print(3); return 0; }")

let test_run_globals () =
  check "global int" 7
    (exit_value "int g;\nint bump() { g = g + 7; return 0; }\n\
                 int main() { bump(); return g; }")

let test_run_structs () =
  check "fields" 30
    (exit_value
       "struct point { int x; int y; };\n\
        int main() { region r = newregion();\n\
        struct point @p = ralloc(r, struct point);\n\
        p->x = 10; p->y = 20; return p->x + p->y; }")

(* The paper's Figure 3: copy a list into a region, then delete it. *)
let figure3 =
  "struct list { int i; struct list @next; };\n\
   struct list @cons(region r, int x, struct list @l) {\n\
  \  struct list @p = ralloc(r, struct list);\n\
  \  p->i = x;\n\
  \  p->next = l;\n\
  \  return p;\n\
   }\n\
   struct list @copy_list(region r, struct list @l) {\n\
  \  if (l == null) { return null; }\n\
  \  return cons(r, l->i, copy_list(r, l->next));\n\
   }\n\
   int sum(struct list @l) {\n\
  \  int s;\n\
  \  s = 0;\n\
  \  while (l != null) { s = s + l->i; l = l->next; }\n\
  \  return s;\n\
   }\n\
   int main() {\n\
  \  region r0 = newregion();\n\
  \  struct list @l = null;\n\
  \  int i;\n\
  \  i = 1;\n\
  \  while (i <= 10) { l = cons(r0, i, l); i = i + 1; }\n\
  \  region tmp = newregion();\n\
  \  struct list @c = copy_list(tmp, l);\n\
  \  int s1 = sum(c);\n\
  \  c = null;\n\
  \  int ok = deleteregion(tmp);\n\
  \  return s1 * 100 + ok * 10 + (sum(l) == s1);\n\
   }"

let test_figure3_list_copy () =
  (* sum 1..10 = 55; delete succeeds (ok=1); original intact (1). *)
  let r, lib = Creg.Vm.run_source figure3 in
  check "figure 3 result" 5511 r.Creg.Vm.exit_value;
  let rs = Regions.Region.rstats lib in
  check "two regions created" 2 (Regions.Rstats.total_regions rs);
  check "one region deleted" 1 (Regions.Rstats.live_regions rs)

let test_deleteregion_blocked_at_language_level () =
  (* Keeping a pointer into tmp blocks deletion; nulling it unblocks. *)
  let src =
    "struct list { int i; struct list @next; };\n\
     int main() {\n\
    \  region tmp = newregion();\n\
    \  struct list @p = ralloc(tmp, struct list);\n\
    \  int first = deleteregion(tmp);\n\
    \  p = null;\n\
    \  int second = deleteregion(tmp);\n\
    \  return first * 10 + second;\n\
     }"
  in
  check "blocked then allowed" 1 (exit_value src)

let test_unsafe_mode_always_deletes () =
  let src =
    "struct list { int i; struct list @next; };\n\
     int main() {\n\
    \  region tmp = newregion();\n\
    \  struct list @p = ralloc(tmp, struct list);\n\
    \  int first = deleteregion(tmp);\n\
    \  p = null;\n\
    \  return first;\n\
     }"
  in
  check "unsafe deletes despite live pointer" 1 (exit_value ~safe:false src)

let test_global_region_pointer_blocks () =
  let src =
    "struct list { int i; struct list @next; };\n\
     struct list @keep;\n\
     int main() {\n\
    \  region tmp = newregion();\n\
    \  keep = ralloc(tmp, struct list);\n\
    \  int first = deleteregion(tmp);\n\
    \  keep = null;\n\
    \  int second = deleteregion(tmp);\n\
    \  return first * 10 + second;\n\
     }"
  in
  check "global blocks until cleared" 1 (exit_value src)

let test_cross_region_cleanup_at_language_level () =
  (* Region A points into region B; deleting A must release B. *)
  let src =
    "struct list { int i; struct list @next; };\n\
     int main() {\n\
    \  region a = newregion();\n\
    \  region b = newregion();\n\
    \  struct list @x = ralloc(a, struct list);\n\
    \  x->next = ralloc(b, struct list);\n\
    \  x = null;\n\
    \  int b_blocked = deleteregion(b);\n\
    \  int a_ok = deleteregion(a);\n\
    \  int b_ok = deleteregion(b);\n\
    \  return b_blocked * 100 + a_ok * 10 + b_ok;\n\
     }"
  in
  check "cleanup chain" 11 (exit_value src)

let test_regionof_builtin () =
  let src =
    "struct list { int i; struct list @next; };\n\
     int main() {\n\
    \  region r = newregion();\n\
    \  struct list @p = ralloc(r, struct list);\n\
    \  region r2 = regionof(p);\n\
    \  int same = (r2 == r);\n\
    \  r2 = null;\n\
    \  return same;\n\
     }"
  in
  check "regionof returns the region" 1 (exit_value src)

let test_deleteregion_nulls_handle () =
  let src =
    "int main() {\n\
    \  region r = newregion();\n\
    \  int ok = deleteregion(r);\n\
    \  return ok * 10 + (r == null);\n\
     }"
  in
  check "handle nulled after delete" 11 (exit_value src)

let test_extra_region_handle_blocks_at_language_level () =
  (* A second handle to the region (even a region-typed copy) is an
     external reference. *)
  let src =
    "int main() {\n\
    \  region r = newregion();\n\
    \  region alias = r;\n\
    \  int blocked = deleteregion(r);\n\
    \  alias = null;\n\
    \  int ok = deleteregion(r);\n\
    \  return blocked * 10 + ok;\n\
     }"
  in
  check "alias blocks" 1 (exit_value src)

let test_runtime_faults () =
  let null_deref =
    "struct list { int i; struct list @next; };\n\
     int main() { struct list @p = null; return p->i; }"
  in
  (match run null_deref with
  | _ -> Alcotest.fail "expected fault"
  | exception Creg.Vm.Fault _ -> ());
  (match run "int main() { return 1 / 0; }" with
  | _ -> Alcotest.fail "expected fault"
  | exception Creg.Vm.Fault _ -> ());
  match
    Creg.Vm.run_source ~max_steps:1000 "int main() { while (1) { } return 0; }"
  with
  | _ -> Alcotest.fail "expected step-limit fault"
  | exception Creg.Vm.Fault _ -> ()

let test_rstralloc_builtin () =
  let src =
    "int main() {\n\
    \  region r = newregion();\n\
    \  int buf = rstralloc(r, 256);\n\
    \  int ok = deleteregion(r);\n\
    \  return (buf != 0) * 10 + ok;\n\
     }"
  in
  check "rstralloc usable" 11 (exit_value src)

let test_arrays_and_pointer_arithmetic () =
  (* rallocarray + the paper's address arithmetic on region pointers *)
  let src =
    "struct cell { int v; struct cell @link; };\n\
     int main() {\n\
    \  region r = newregion();\n\
    \  struct cell @a = rallocarray(r, 10, struct cell);\n\
    \  int i; i = 0;\n\
    \  while (i < 10) {\n\
    \    struct cell @e = a + i;\n\
    \    e->v = i * i;\n\
    \    i = i + 1;\n\
    \  }\n\
    \  int s; s = 0; i = 0;\n\
    \  while (i < 10) { s = s + (a + i)->v; i = i + 1; }\n\
    \  a = null;\n\
    \  int ok = deleteregion(r);\n\
    \  return s * 10 + ok;\n\
     }"
  in
  (* sum of squares 0..9 = 285 *)
  check "array arithmetic" 2851 (exit_value src)

let test_array_interior_pointer_blocks_delete () =
  let src =
    "struct cell { int v; struct cell @link; };\n\
     int main() {\n\
    \  region r = newregion();\n\
    \  struct cell @a = rallocarray(r, 8, struct cell);\n\
    \  struct cell @mid = a + 4;\n\
    \  a = null;\n\
    \  int blocked = deleteregion(r);\n\
    \  mid = null;\n\
    \  int ok = deleteregion(r);\n\
    \  return blocked * 10 + ok;\n\
     }"
  in
  check "interior pointer counts" 1 (exit_value src)

let test_array_cleanup_releases_cross_region () =
  (* elements of an array in region a point into region b; deleting a
     must run the array cleanup and release b *)
  let src =
    "struct cell { int v; struct cell @link; };\n\
     int main() {\n\
    \  region a = newregion();\n\
    \  region b = newregion();\n\
    \  struct cell @arr = rallocarray(a, 4, struct cell);\n\
    \  int i; i = 0;\n\
    \  while (i < 4) { (arr + i)->link = ralloc(b, struct cell); i = i + 1; }\n\
    \  arr = null;\n\
    \  int b_blocked = deleteregion(b);\n\
    \  int a_ok = deleteregion(a);\n\
    \  int b_ok = deleteregion(b);\n\
    \  return b_blocked * 100 + a_ok * 10 + b_ok;\n\
     }"
  in
  check "array cleanup chain" 11 (exit_value src)

let test_ptr_arith_type_rules () =
  (* int + pointer is not address arithmetic; pointer + pointer neither *)
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s @q = 1 + p; return 0; }";
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s @q = p + p; return 0; }";
  type_ok
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @p = ralloc(r, struct s);\n\
     struct s @q = p + 1; q = null; return 0; }"

let test_rallocarray_type_rules () =
  type_error "struct s { int x; };\nint main() { int a = rallocarray(3, 1, struct s); return 0; }";
  type_error
    "struct s { int x; };\n\
     int main() { region r = newregion(); struct s @a = rallocarray(r, r, struct s);\n\
     return 0; }"

let test_vm_costs_flow_to_accounts () =
  let _, lib = Creg.Vm.run_source figure3 in
  let c = Sim.Memory.cost (Regions.Region.memory lib) in
  check_bool "base instrs" true (Sim.Cost.base_instrs c > 0);
  check_bool "alloc instrs" true (Sim.Cost.alloc_instrs c > 0);
  check_bool "refcount instrs" true (Sim.Cost.refcount_instrs c > 0);
  check_bool "stack scan instrs" true (Sim.Cost.stack_scan_instrs c > 0);
  check_bool "cleanup instrs" true (Sim.Cost.cleanup_instrs c > 0)

let test_deep_recursion_with_regions () =
  (* Region pointers across many live frames: scan/unscan must stay
     balanced under recursion with a failed delete at the bottom. *)
  let src =
    "struct list { int i; struct list @next; };\n\
     struct list @g;\n\
     int deep(region r, int n, struct list @l) {\n\
    \  if (n == 0) {\n\
    \    g = l;\n\
    \    int blocked = deleteregion(r);\n\
    \    return blocked;\n\
    \  }\n\
    \  struct list @p = ralloc(r, struct list);\n\
    \  p->i = n;\n\
    \  p->next = l;\n\
    \  return deep(r, n - 1, p);\n\
     }\n\
     int main() {\n\
    \  region r = newregion();\n\
    \  int blocked = deep(r, 40, null);\n\
    \  g = null;\n\
    \  int ok = deleteregion(r);\n\
    \  return blocked * 10 + ok;\n\
     }"
  in
  check "deep recursion" 1 (exit_value src)

let test_mutual_recursion_via_order () =
  (* creg resolves all function names in a first pass, so mutual
     recursion needs no prototypes. *)
  check "even(10)" 1
    (exit_value
       "int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }\n\
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }\n\
        int main() { return is_even(10); }")

let test_globals_pointer_default_null () =
  (* global region pointers start null (the global area is cleared) *)
  check "null global" 1
    (exit_value
       "struct s { int x; };\nstruct s @g;\n\
        int main() { if (g == null) { return 1; } return 0; }")

let test_void_functions () =
  check "void call" 5
    (exit_value
       "int acc;\n\
        void bump(int k) { acc = acc + k; }\n\
        int main() { bump(2); bump(3); return acc; }")

let test_nested_control_flow () =
  check "nested" 26
    (exit_value
       "int main() {\n\
        int total; total = 0;\n\
        int i; i = 0;\n\
        while (i < 5) {\n\
        \  int j; j = 0;\n\
        \  while (j < 5) {\n\
        \    if ((i + j) % 2 == 0) { total = total + 2; } else { total = total + 0; }\n\
        \    j = j + 1;\n\
        \  }\n\
        \  i = i + 1;\n\
        }\n\
        if (total > 20) { return total; } else { return 0; }\n\
        }")

let test_treesort_program () =
  (* The examples/treesort.cq program: tree region + result region,
     arrays, pointer arithmetic, wholesale tree deletion. *)
  let src =
    "struct node { int key; struct node @left; struct node @right; };\n\
     struct cell { int v; };\n\
     struct node @insert(region r, struct node @t, int key) {\n\
    \  if (t == null) { struct node @n = ralloc(r, struct node); n->key = key; return n; }\n\
    \  if (key < t->key) { t->left = insert(r, t->left, key); }\n\
    \  else { t->right = insert(r, t->right, key); }\n\
    \  return t;\n\
     }\n\
     int emit(struct node @t, struct cell @out, int pos) {\n\
    \  if (t == null) { return pos; }\n\
    \  pos = emit(t->left, out, pos);\n\
    \  struct cell @slot = out + pos;\n\
    \  slot->v = t->key;\n\
    \  pos = pos + 1;\n\
    \  return emit(t->right, out, pos);\n\
     }\n\
     int main() {\n\
    \  int n; n = 120;\n\
    \  region tree = newregion();\n\
    \  struct node @root = null;\n\
    \  int seed; seed = 12345;\n\
    \  int i; i = 0;\n\
    \  while (i < n) { seed = (seed * 1103 + 12721) % 65536; root = insert(tree, root, seed); i = i + 1; }\n\
    \  region result = newregion();\n\
    \  struct cell @sorted = rallocarray(result, n, struct cell);\n\
    \  int filled = emit(root, sorted, 0);\n\
    \  root = null;\n\
    \  int tree_gone = deleteregion(tree);\n\
    \  int ok; ok = 1; i = 1;\n\
    \  while (i < n) { if ((sorted + (i - 1))->v > (sorted + i)->v) { ok = 0; } i = i + 1; }\n\
    \  sorted = null;\n\
    \  int res_gone = deleteregion(result);\n\
    \  return (filled == n) * 1000 + tree_gone * 100 + ok * 10 + res_gone;\n\
     }"
  in
  let outcome, lib = Creg.Vm.run_source src in
  check "sorted, both regions freed" 1111 outcome.Creg.Vm.exit_value;
  check "no pages leaked" 0 (Regions.Region.live_pages lib)

let test_else_if_chains () =
  let classify n =
    exit_value
      (Printf.sprintf
         "int main() {\n\
          int n; n = %d;\n\
          if (n < 10) { return 1; }\n\
          else if (n < 100) { return 2; }\n\
          else if (n < 1000) { return 3; }\n\
          else { return 4; }\n\
          }" n)
  in
  check "small" 1 (classify 5);
  check "medium" 2 (classify 50);
  check "large" 3 (classify 500);
  check "huge" 4 (classify 5000)

let test_comment_handling () =
  check "comments everywhere" 3
    (exit_value
       "// leading comment\n\
        int main() { /* inline */ return /* mid */ 3; // trailing\n}")

let test_regions_across_calls () =
  (* a region created in a callee and returned survives *)
  let src =
    "struct s { int x; };\n\
     region make() { region r = newregion(); return r; }\n\
     int main() {\n\
    \  region r = make();\n\
    \  struct s @p = ralloc(r, struct s);\n\
    \  p->x = 9;\n\
    \  int v = p->x;\n\
    \  p = null;\n\
    \  int ok = deleteregion(r);\n\
    \  return v * 10 + ok;\n\
     }"
  in
  check "region returned from callee" 91 (exit_value src)

let test_many_regions_in_creg () =
  (* create and delete many regions in a loop: exercises the pool *)
  let src =
    "struct s { int x; struct s @n; };\n\
     int main() {\n\
    \  int i; i = 0;\n\
    \  int ok; ok = 0;\n\
    \  while (i < 100) {\n\
    \    region r = newregion();\n\
    \    struct s @p = ralloc(r, struct s);\n\
    \    p->x = i;\n\
    \    p = null;\n\
    \    ok = ok + deleteregion(r);\n\
    \    i = i + 1;\n\
    \  }\n\
    \  return ok;\n\
     }"
  in
  let outcome, lib = Creg.Vm.run_source src in
  check "all 100 deletions succeeded" 100 outcome.Creg.Vm.exit_value;
  check "no live pages" 0 (Regions.Region.live_pages lib)

(* ------------------------------------------------------------------ *)
(* Compiler fuzzing: random arithmetic expressions must evaluate to
   exactly what a reference evaluator (with the VM's 32-bit
   semantics) computes. *)

type fexpr =
  | Lit of int
  | Bin of string * fexpr * fexpr
  | DivLit of fexpr * int  (* nonzero literal denominator *)
  | Neg of fexpr
  | Not of fexpr

let rec render = function
  | Lit n -> string_of_int n
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render a) op (render b)
  | DivLit (a, n) -> Printf.sprintf "(%s / %d)" (render a) n
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Not a -> Printf.sprintf "(!%s)" (render a)

let mask = 0xFFFFFFFF

let rec feval = function
  | Lit n -> n
  | Bin (op, a, b) -> (
      let x = feval a and y = feval b in
      match op with
      | "+" -> (x + y) land mask
      | "-" -> (x - y) land mask
      | "*" -> x * y land mask
      | "%" -> if y = 0 then 0 (* avoided by the generator *) else x mod y
      | "<" -> if x < y then 1 else 0
      | "<=" -> if x <= y then 1 else 0
      | ">" -> if x > y then 1 else 0
      | ">=" -> if x >= y then 1 else 0
      | "==" -> if x = y then 1 else 0
      | "!=" -> if x <> y then 1 else 0
      | "&&" -> if x <> 0 && y <> 0 then 1 else 0
      | "||" -> if x <> 0 || y <> 0 then 1 else 0
      | _ -> assert false)
  | DivLit (a, n) -> feval a / n
  | Neg a -> -feval a land mask
  | Not a -> if feval a = 0 then 1 else 0

let fexpr_gen =
  let open QCheck.Gen in
  let ops = [ "+"; "-"; "*"; "<"; "<="; ">"; ">="; "=="; "!="; "&&"; "||" ] in
  sized (fun size ->
      fix
        (fun self n ->
          if n = 0 then map (fun v -> Lit v) (int_bound 1000)
          else
            frequency
              [
                (1, map (fun v -> Lit v) (int_bound 1000));
                ( 6,
                  map3
                    (fun op a b -> Bin (op, a, b))
                    (oneofl ops) (self (n / 2)) (self (n / 2)) );
                (1, map2 (fun a d -> DivLit (a, d + 1)) (self (n / 2)) (int_bound 99));
                (1, map (fun a -> Neg a) (self (n / 2)));
                (1, map (fun a -> Not a) (self (n / 2)));
              ])
        (min size 6))

let qcheck_expression_fuzz =
  QCheck.Test.make ~count:300 ~name:"compiled expressions match reference eval"
    (QCheck.make ~print:render fexpr_gen)
    (fun e ->
      (* Modulo can still divide by a computed zero; the VM faults
         there and the reference returns 0, so skip those cases. *)
      let src = Printf.sprintf "int main() { return %s; }" (render e) in
      match Creg.Vm.run_source src with
      | outcome, _ -> outcome.Creg.Vm.exit_value = feval e
      | exception Creg.Vm.Fault _ -> true)

(* ------------------------------------------------------------------ *)
(* Statement-level fuzzing: random straight-line programs with
   assignments and nested conditionals over four int variables,
   compared against a reference interpreter. *)

type fstmt =
  | Assign of int * fexpr  (* variable index, expression *)
  | FIf of fexpr * fstmt list * fstmt list
  | FLoop of int * int * fstmt list
      (* bounded loop with a generation-unique counter the body cannot
         touch: int l<id>; while (l<id> < n) { body; l<id>++ } *)

let var_expr v = Printf.sprintf "x%d" v

let rec render_stmt = function
  | Assign (v, e) -> Printf.sprintf "x%d = %s;" v (render_with_vars e)
  | FIf (c, a, b) ->
      Printf.sprintf "if (%s) { %s } else { %s }" (render_with_vars c)
        (String.concat " " (List.map render_stmt a))
        (String.concat " " (List.map render_stmt b))
  | FLoop (id, n, body) ->
      Printf.sprintf "int l%d; l%d = 0; while (l%d < %d) { %s l%d = l%d + 1; }"
        id id id n
        (String.concat " " (List.map render_stmt body))
        id id

(* Reuse the expression fuzzer but substitute variables for some
   literals: encode variable reads as Lit (-1-v). *)
and render_with_vars e =
  match e with
  | Lit n when n < 0 -> var_expr (-n - 1)
  | Lit n -> string_of_int n
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render_with_vars a) op (render_with_vars b)
  | DivLit (a, n) -> Printf.sprintf "(%s / %d)" (render_with_vars a) n
  | Neg a -> Printf.sprintf "(-%s)" (render_with_vars a)
  | Not a -> Printf.sprintf "(!%s)" (render_with_vars a)

let rec eval_with_vars env e =
  match e with
  | Lit n when n < 0 -> env.(-n - 1)
  | Lit n -> n
  | Bin (op, a, b) ->
      feval (Bin (op, Lit (eval_with_vars env a), Lit (eval_with_vars env b)))
  | DivLit (a, n) -> eval_with_vars env a / n
  | Neg a -> -eval_with_vars env a land mask
  | Not a -> if eval_with_vars env a = 0 then 1 else 0

let rec eval_stmt env = function
  | Assign (v, e) -> env.(v) <- eval_with_vars env e
  | FIf (c, a, b) ->
      if eval_with_vars env c <> 0 then List.iter (eval_stmt env) a
      else List.iter (eval_stmt env) b
  | FLoop (_, n, body) ->
      for _ = 1 to n do
        List.iter (eval_stmt env) body
      done

let fuzz_expr_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n = 0 then
            frequency
              [
                (2, map (fun v -> Lit v) (int_bound 500));
                (2, map (fun v -> Lit (-1 - v)) (int_bound 3));
              ]
          else
            frequency
              [
                (1, map (fun v -> Lit (-1 - v)) (int_bound 3));
                ( 5,
                  map3
                    (fun op a b -> Bin (op, a, b))
                    (oneofl [ "+"; "-"; "*"; "<"; "=="; "!=" ])
                    (self (n / 2)) (self (n / 2)) );
                (1, map2 (fun a d -> DivLit (a, d + 1)) (self (n / 2)) (int_bound 30));
              ])
        (min size 4))

let loop_counter = ref 0

let fuzz_stmt_gen =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let assign = map2 (fun v e -> Assign (v, e)) (int_bound 3) fuzz_expr_gen in
      if depth = 0 then assign
      else
        frequency
          [
            (3, assign);
            ( 1,
              map3
                (fun c a b -> FIf (c, a, b))
                fuzz_expr_gen
                (list_size (int_bound 3) (self (depth - 1)))
                (list_size (int_bound 3) (self (depth - 1))) );
            ( 1,
              map3
                (fun () n body ->
                  incr loop_counter;
                  FLoop (!loop_counter, n, body))
                (return ()) (int_range 1 6)
                (list_size (int_bound 3) (self (depth - 1))) );
          ])
    2

let fuzz_prog_gen = QCheck.Gen.(list_size (int_range 1 12) fuzz_stmt_gen)

let render_program stmts =
  Printf.sprintf
    "int main() {\n\
     int x0; int x1; int x2; int x3;\n\
     x0 = 0; x1 = 1; x2 = 2; x3 = 3;\n\
     %s\n\
     return ((x0 + x1) + (x2 + x3));\n\
     }"
    (String.concat "\n" (List.map render_stmt stmts))

let qcheck_statement_fuzz =
  QCheck.Test.make ~count:200
    ~name:"compiled programs match the reference interpreter"
    (QCheck.make
       ~print:(fun stmts -> render_program stmts)
       fuzz_prog_gen)
    (fun stmts ->
      let env = [| 0; 1; 2; 3 |] in
      (try List.iter (eval_stmt env) stmts with Division_by_zero -> ());
      let expect =
        feval
          (Bin ("+", Bin ("+", Lit env.(0), Lit env.(1)),
                Bin ("+", Lit env.(2), Lit env.(3))))
      in
      match Creg.Vm.run_source (render_program stmts) with
      | outcome, _ -> outcome.Creg.Vm.exit_value = expect
      | exception Creg.Vm.Fault _ -> true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "creg"
    [
      ( "lexer",
        [
          tc "basics" `Quick test_lexer_basics;
          tc "keywords vs idents" `Quick test_lexer_keywords_vs_idents;
          tc "positions" `Quick test_lexer_positions;
          tc "block comments" `Quick test_lexer_block_comment;
          tc "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          tc "precedence" `Quick test_parser_precedence;
          tc "syntax error" `Quick test_parser_syntax_error;
          tc "program shapes" `Quick test_parser_program_shapes;
        ] );
      ( "typecheck",
        [
          tc "no implicit @/* conversion" `Quick test_ty_no_implicit_conversion;
          tc "explicit casts allowed" `Quick test_ty_explicit_cast_allowed;
          tc "region pointers must be initialised" `Quick
            test_ty_region_ptr_must_be_initialised;
          tc "unbound names" `Quick test_ty_unbound_and_unknown;
          tc "field errors" `Quick test_ty_field_errors;
          tc "call arity and types" `Quick test_ty_call_arity_and_types;
          tc "deleteregion target" `Quick test_ty_deleteregion_needs_region_var;
          tc "conditions and arithmetic" `Quick test_ty_condition_and_arith;
          tc "pointer comparison" `Quick test_ty_pointer_comparison;
          tc "main required" `Quick test_ty_main_required;
          tc "return checks" `Quick test_ty_return_checks;
          tc "duplicates and shadowing" `Quick test_ty_duplicates;
        ] );
      ( "vm",
        [
          tc "arithmetic and control" `Quick test_run_arith_and_control;
          tc "recursion" `Quick test_run_recursion;
          tc "print" `Quick test_run_print;
          tc "globals" `Quick test_run_globals;
          tc "structs" `Quick test_run_structs;
          tc "figure 3 list copy" `Quick test_figure3_list_copy;
          tc "deleteregion blocked, then ok" `Quick
            test_deleteregion_blocked_at_language_level;
          tc "unsafe mode deletes" `Quick test_unsafe_mode_always_deletes;
          tc "global pointer blocks" `Quick test_global_region_pointer_blocks;
          tc "cross-region cleanup" `Quick
            test_cross_region_cleanup_at_language_level;
          tc "regionof" `Quick test_regionof_builtin;
          tc "handle nulled" `Quick test_deleteregion_nulls_handle;
          tc "alias handle blocks" `Quick
            test_extra_region_handle_blocks_at_language_level;
          tc "runtime faults" `Quick test_runtime_faults;
          tc "rstralloc" `Quick test_rstralloc_builtin;
          tc "arrays + pointer arithmetic" `Quick
            test_arrays_and_pointer_arithmetic;
          tc "interior pointer blocks delete" `Quick
            test_array_interior_pointer_blocks_delete;
          tc "array cleanup cross-region" `Quick
            test_array_cleanup_releases_cross_region;
          tc "pointer arithmetic typing" `Quick test_ptr_arith_type_rules;
          tc "rallocarray typing" `Quick test_rallocarray_type_rules;
          tc "cost accounts" `Quick test_vm_costs_flow_to_accounts;
          tc "deep recursion" `Quick test_deep_recursion_with_regions;
          tc "mutual recursion" `Quick test_mutual_recursion_via_order;
          tc "global pointers default to null" `Quick
            test_globals_pointer_default_null;
          tc "void functions" `Quick test_void_functions;
          tc "nested control flow" `Quick test_nested_control_flow;
          tc "comments" `Quick test_comment_handling;
          tc "else-if chains" `Quick test_else_if_chains;
          tc "treesort program" `Quick test_treesort_program;
          tc "region returned from callee" `Quick test_regions_across_calls;
          tc "many regions loop" `Quick test_many_regions_in_creg;
          QCheck_alcotest.to_alcotest qcheck_expression_fuzz;
          QCheck_alcotest.to_alcotest qcheck_statement_fuzz;
        ] );
    ]
