(* Tests for the heap sanitizer and the cross-allocator differential
   fuzz harness. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh () = Sim.Memory.create ~with_cache:false ()

let wrap_sun ?config () =
  let mem = fresh () in
  let san = Check.Sanitizer.wrap ?config (Alloc.Sun.create mem) in
  (mem, san, Check.Sanitizer.allocator san)

(* ------------------------------------------------------------------ *)
(* Sanitizer violations *)

let violation f =
  match f () with
  | _ -> None
  | exception Check.Sanitizer.Violation v -> Some v

let test_overflow_detected () =
  let mem, san, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 10 in
  (* One word past the 12 usable bytes: the first rear-redzone word. *)
  Sim.Memory.store mem (p + 12) 0x42;
  match violation (fun () -> Check.Sanitizer.check san) with
  | Some (Check.Sanitizer.Overflow { user; _ }) -> check "overflowed block" p user
  | _ -> Alcotest.fail "expected Overflow"

let test_underflow_detected () =
  let mem, san, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 10 in
  Sim.Memory.store mem (p - 4) 0x42;
  match violation (fun () -> Check.Sanitizer.check san) with
  | Some (Check.Sanitizer.Underflow { user; _ }) -> check "underflowed block" p user
  | _ -> Alcotest.fail "expected Underflow"

let test_overflow_reported_at_free () =
  let mem, _, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 10 in
  Sim.Memory.store mem (p + 12) 0x42;
  match violation (fun () -> a.free p) with
  | Some (Check.Sanitizer.Overflow _) -> ()
  | _ -> Alcotest.fail "expected Overflow at free"

let test_use_after_free_detected () =
  let mem, san, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 32 in
  a.free p;
  (* The block sits poisoned in quarantine; write through the dangling
     pointer. *)
  Sim.Memory.store mem (p + 8) 0x1234;
  match violation (fun () -> Check.Sanitizer.check san) with
  | Some (Check.Sanitizer.Use_after_free { user; addr; _ }) ->
      check "dangling block" p user;
      check "faulting word" (p + 8) addr
  | _ -> Alcotest.fail "expected Use_after_free"

let test_double_free_detected () =
  let _, _, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 32 in
  a.free p;
  match violation (fun () -> a.free p) with
  | Some (Check.Sanitizer.Double_free q) -> check "same block" p q
  | _ -> Alcotest.fail "expected Double_free"

let test_invalid_free_detected () =
  let _, _, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 32 in
  match violation (fun () -> a.free (p + 4)) with
  | Some (Check.Sanitizer.Invalid_free _) -> ()
  | _ -> Alcotest.fail "expected Invalid_free"

let test_quarantine_delays_reuse () =
  let _, san, a = wrap_sun () in
  let p = a.Alloc.Allocator.malloc 48 in
  a.free p;
  (* The underlying chunk is still held, so an identical request must
     not land on the same address until the quarantine is flushed. *)
  let q = a.malloc 48 in
  check_bool "no immediate reuse through quarantine" true (p <> q);
  Check.Sanitizer.flush san;
  Check.Sanitizer.check san

let test_quarantine_eviction_checks_poison () =
  let mem, _, a =
    wrap_sun ~config:{ Check.Sanitizer.default with quarantine = 2 } ()
  in
  let p = a.Alloc.Allocator.malloc 16 in
  a.free p;
  Sim.Memory.store mem p 7;
  (* Two more frees push [p] out of the 2-deep quarantine; the eviction
     re-check must catch the lost poison. *)
  let q = a.malloc 16 and r = a.malloc 16 in
  match
    violation (fun () ->
        a.free q;
        a.free r)
  with
  | Some (Check.Sanitizer.Use_after_free { user; _ }) -> check "evicted block" p user
  | _ -> Alcotest.fail "expected Use_after_free at eviction"

let test_sanitizer_over_every_allocator () =
  (* The same probe violates on every target: sun, bsd, lea, gc,
     region. *)
  List.iter
    (fun t ->
      let inst = t.Check.Fuzz.make Check.Sanitizer.default in
      let a = inst.Check.Fuzz.alloc in
      let p = a.Alloc.Allocator.malloc 20 in
      Sim.Memory.store inst.Check.Fuzz.mem (p + 20) 0x42;
      match violation (fun () -> Check.Sanitizer.check inst.Check.Fuzz.san) with
      | Some (Check.Sanitizer.Overflow _) -> ()
      | _ -> Alcotest.fail (t.Check.Fuzz.label ^ ": expected Overflow"))
    (Check.Fuzz.targets ())

(* ------------------------------------------------------------------ *)
(* Cost identity with the sanitizer disabled *)

let test_disabled_sanitizer_is_identity () =
  let counters mem =
    let c = Sim.Memory.cost mem in
    (Sim.Cost.cycles c, Sim.Cost.alloc_instrs c, Sim.Cost.base_instrs c)
  in
  let run wrap =
    let mem = Sim.Memory.create ~with_cache:true () in
    let a = Alloc.Lea.create mem in
    let a =
      if wrap then
        Check.Sanitizer.allocator
          (Check.Sanitizer.wrap ~config:Check.Sanitizer.disabled a)
      else a
    in
    let rng = Sim.Rng.create 3 in
    let live = ref [] in
    for _ = 1 to 400 do
      if Sim.Rng.int rng 100 < 60 || !live = [] then begin
        let p = a.Alloc.Allocator.malloc (4 + Sim.Rng.int rng 300) in
        Sim.Memory.store mem p 1;
        live := p :: !live
      end
      else begin
        a.free (List.hd !live);
        live := List.tl !live
      end
    done;
    (counters mem, Alloc.Stats.allocs a.stats, Alloc.Stats.os_bytes a.stats)
  in
  check_bool "disabled wrap leaves simulated counts byte-identical" true
    (run false = run true)

(* ------------------------------------------------------------------ *)
(* Differential fuzzer *)

let test_all_targets_pass () =
  List.iter
    (fun t ->
      for k = 0 to 19 do
        let trace = Check.Trace.generate ~seed:(100 + k) ~len:(30 + (7 * k)) in
        match Check.Fuzz.run_trace t trace with
        | Ok () -> ()
        | Error f ->
            Alcotest.failf "%s seed %d: %a" t.Check.Fuzz.label (100 + k)
              Check.Fuzz.pp_failure f
      done)
    (Check.Fuzz.targets ())

let test_trace_generation_deterministic () =
  let t1 = Check.Trace.generate ~seed:42 ~len:200 in
  let t2 = Check.Trace.generate ~seed:42 ~len:200 in
  check_bool "same seed, same trace" true (t1 = t2);
  let t3 = Check.Trace.generate ~seed:43 ~len:200 in
  check_bool "different seed, different trace" true (t1 <> t3)

(* The deliberately injected bug of the acceptance criteria: an
   allocator returning blocks one word late must be caught (its
   blocks' last words land on the rear redzone), and shrinking must
   reduce the reproduction to a single allocation. *)
let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_off_by_one_caught_and_shrunk () =
  match Check.Fuzz.selftest ~seed:7 with
  | Error m -> Alcotest.fail m
  | Ok (small, f) ->
      check "shrunk to a single op" 1 (Array.length small.Check.Trace.ops);
      check_bool "failure is an overflow" true
        (contains f.Check.Fuzz.reason "overflow")

let test_shrink_rejects_passing_trace () =
  let trace = Check.Trace.generate ~seed:5 ~len:40 in
  match Check.Fuzz.shrink (Check.Fuzz.find_target "sun") trace with
  | _ -> Alcotest.fail "expected Invalid_argument for a passing trace"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let test_fault_injection_all_targets () =
  List.iter
    (fun t ->
      match Check.Fuzz.fault_injection t ~page_budget:64 with
      | Ok () -> ()
      | Error m -> Alcotest.fail (t.Check.Fuzz.label ^ ": " ^ m))
    (Check.Fuzz.targets ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "sanitizer",
        [
          tc "overflow" `Quick test_overflow_detected;
          tc "underflow" `Quick test_underflow_detected;
          tc "overflow at free" `Quick test_overflow_reported_at_free;
          tc "use-after-free" `Quick test_use_after_free_detected;
          tc "double free" `Quick test_double_free_detected;
          tc "invalid free" `Quick test_invalid_free_detected;
          tc "quarantine delays reuse" `Quick test_quarantine_delays_reuse;
          tc "eviction re-checks poison" `Quick
            test_quarantine_eviction_checks_poison;
          tc "works over every allocator" `Quick
            test_sanitizer_over_every_allocator;
          tc "disabled wrap is cost-identity" `Quick
            test_disabled_sanitizer_is_identity;
        ] );
      ( "fuzz",
        [
          tc "trace generation deterministic" `Quick
            test_trace_generation_deterministic;
          tc "all targets pass 20 traces" `Quick test_all_targets_pass;
          tc "off-by-one caught and shrunk" `Quick
            test_off_by_one_caught_and_shrunk;
          tc "shrink rejects passing traces" `Quick
            test_shrink_rejects_passing_trace;
          tc "fault injection on all targets" `Quick
            test_fault_injection_all_targets;
        ] );
    ]
