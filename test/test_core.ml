(* Tests for the region library: allocation, page management, cleanup
   functions, reference counting, stack scan/unscan, and emulation. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type env = {
  mem : Sim.Memory.t;
  mut : Regions.Mutator.t;
  lib : Regions.Region.t;
}

let fresh ?(safe = true) ?(offset_regions = true) ?(eager_locals = false) () =
  let mem = Sim.Memory.create ~with_cache:false () in
  let mut = Regions.Mutator.create mem in
  let cleanups = Regions.Cleanup.create () in
  let lib =
    Regions.Region.create ~safe ~offset_regions ~eager_locals cleanups mut
  in
  { mem; mut; lib }

(* A list-node layout, as in Figure 3 of the paper: int i; list @next *)
let node_layout = Regions.Cleanup.layout ~size_bytes:8 ~ptr_offsets:[ 4 ]
let plain2 = Regions.Cleanup.layout_words 2

(* ------------------------------------------------------------------ *)
(* Mutator *)

let test_mutator_frames () =
  let e = fresh () in
  let fr = Regions.Mutator.push_frame e.mut ~nslots:3 ~ptr_slots:[ 1 ] in
  check "depth" 1 (Regions.Mutator.depth e.mut);
  Regions.Mutator.set_local e.mut fr 0 42;
  check "local roundtrip" 42 (Regions.Mutator.get_local fr 0);
  check_bool "ptr slot" true (Regions.Mutator.is_ptr_slot fr 1);
  check_bool "non-ptr slot" false (Regions.Mutator.is_ptr_slot fr 0);
  Regions.Mutator.pop_frame e.mut;
  check "depth after pop" 0 (Regions.Mutator.depth e.mut)

let test_mutator_with_frame_exception () =
  let e = fresh () in
  (try
     Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun _ ->
         failwith "boom")
   with Failure _ -> ());
  check "popped on exception" 0 (Regions.Mutator.depth e.mut)

let test_mutator_deep_stack () =
  let e = fresh () in
  (* Push past the initial frame-array capacity. *)
  for _ = 1 to 200 do
    ignore (Regions.Mutator.push_frame e.mut ~nslots:2 ~ptr_slots:[ 0 ])
  done;
  check "depth" 200 (Regions.Mutator.depth e.mut);
  for _ = 1 to 200 do
    Regions.Mutator.pop_frame e.mut
  done;
  check "unwound" 0 (Regions.Mutator.depth e.mut)

let test_mutator_globals () =
  let e = fresh () in
  let a0 = Regions.Mutator.global_addr e.mut 0 in
  let a9 = Regions.Mutator.global_addr e.mut 9 in
  check "globals spacing" 36 (a9 - a0);
  check_bool "is_global" true (Regions.Mutator.is_global e.mut a9);
  check_bool "heap not global" false (Regions.Mutator.is_global e.mut (a9 + 8192));
  Sim.Memory.store e.mem a0 7;
  let seen = ref false in
  Regions.Mutator.iter_roots e.mut (fun v -> if v = 7 then seen := true);
  check_bool "roots include globals" true !seen

let test_mutator_unscan_hook () =
  let e = fresh () in
  let unscanned = ref [] in
  Regions.Mutator.set_unscan_hook e.mut (fun fr ->
      unscanned := Regions.Mutator.get_local fr 0 :: !unscanned);
  let f1 = Regions.Mutator.push_frame e.mut ~nslots:1 ~ptr_slots:[ 0 ] in
  Regions.Mutator.set_local e.mut f1 0 111;
  let f2 = Regions.Mutator.push_frame e.mut ~nslots:1 ~ptr_slots:[ 0 ] in
  Regions.Mutator.set_local e.mut f2 0 222;
  ignore (Regions.Mutator.push_frame e.mut ~nslots:1 ~ptr_slots:[]);
  (* Scan everything but the current frame, as deleteregion would. *)
  Regions.Mutator.set_hwm e.mut 2;
  Regions.Mutator.pop_frame e.mut;
  (* Returned into f2, which was scanned: hook fires, hwm drops. *)
  check "hook saw f2" 222 (List.hd !unscanned);
  check "hwm lowered" 1 (Regions.Mutator.hwm e.mut);
  Regions.Mutator.pop_frame e.mut;
  check "hook saw f1" 111 (List.hd !unscanned);
  check "hwm lowered again" 0 (Regions.Mutator.hwm e.mut)

(* ------------------------------------------------------------------ *)
(* Cleanup registry *)

let test_cleanup_registry () =
  let t = Regions.Cleanup.create () in
  let id1 = Regions.Cleanup.register_object t node_layout in
  let id2 = Regions.Cleanup.register_object t node_layout in
  check "hash-consed" id1 id2;
  let id3 = Regions.Cleanup.register_array t node_layout in
  check_bool "array id distinct" true (id3 <> id1);
  check_bool "zero reserved" true (id1 <> 0 && id3 <> 0);
  (match Regions.Cleanup.find t id1 with
  | Regions.Cleanup.Object l -> check "layout size" 8 l.Regions.Cleanup.size_bytes
  | _ -> Alcotest.fail "expected Object");
  match Regions.Cleanup.find t 9999 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_cleanup_layout_validation () =
  let bad f = match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () -> Regions.Cleanup.layout ~size_bytes:8 ~ptr_offsets:[ 6 ]);
  bad (fun () -> Regions.Cleanup.layout ~size_bytes:8 ~ptr_offsets:[ 8 ]);
  bad (fun () -> Regions.Cleanup.layout ~size_bytes:0 ~ptr_offsets:[])

(* ------------------------------------------------------------------ *)
(* Basic region allocation (runs for both safe and unsafe) *)

let in_frame e f =
  Regions.Mutator.with_frame e.mut ~nslots:8 ~ptr_slots:[ 0; 1; 2; 3 ] f

let test_alloc_basics ~safe () =
  let e = fresh ~safe () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      check_bool "aligned" true (p land 3 = 0);
      check "ralloc clears" 0 (Sim.Memory.load e.mem p);
      check "ralloc clears next word" 0 (Sim.Memory.load e.mem (p + 4));
      check "regionof object" r (Regions.Region.regionof e.lib p);
      check "regionof region struct" r (Regions.Region.regionof e.lib r);
      check "regionof elsewhere" 0
        (Regions.Region.regionof e.lib (Regions.Mutator.global_addr e.mut 0));
      let q = Regions.Region.ralloc e.lib r node_layout in
      check_bool "no overlap" true (q >= p + 8 || q + 8 <= p);
      check_bool "delete" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "handle nulled" 0 (Regions.Mutator.get_local fr 0))

let test_alloc_many_pages ~safe () =
  let e = fresh ~safe () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      (* 1000 x 100-byte objects: ~104 bytes each, ~39 per page -> ~26 pages *)
      let layout = Regions.Cleanup.layout_words 25 in
      let addrs = Array.init 1000 (fun _ -> Regions.Region.ralloc e.lib r layout) in
      Array.iter
        (fun a -> check "page map covers all" r (Regions.Region.regionof e.lib a))
        addrs;
      (* Every object writable without corrupting its neighbour. *)
      Array.iteri (fun i a -> Sim.Memory.store e.mem a i) addrs;
      Array.iteri (fun i a -> check "distinct storage" i (Sim.Memory.load e.mem a)) addrs;
      check_bool "many pages mapped" true (Regions.Region.live_pages e.lib > 20);
      check_bool "delete" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "all pages pooled" 0 (Regions.Region.live_pages e.lib))

let test_page_pool_reuse () =
  let e = fresh ~safe:false () in
  in_frame e (fun fr ->
      let r1 = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r1;
      for _ = 1 to 200 do
        ignore (Regions.Region.ralloc e.lib r1 (Regions.Cleanup.layout_words 64))
      done;
      let os = Regions.Region.os_bytes e.lib in
      ignore (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      (* A second identical region must reuse pooled pages: no OS growth. *)
      let r2 = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r2;
      for _ = 1 to 200 do
        ignore (Regions.Region.ralloc e.lib r2 (Regions.Cleanup.layout_words 64))
      done;
      check "os bytes unchanged" os (Regions.Region.os_bytes e.lib))

let test_region_offsetting () =
  let e = fresh () in
  (* With offsetting, consecutive region structures land at different
     64-byte-line offsets within their pages (cycling mod 8). *)
  let offs =
    List.init 8 (fun _ ->
        let r = Regions.Region.newregion e.lib in
        r land 4095)
  in
  let distinct = List.sort_uniq compare offs in
  check "eight distinct offsets" 8 (List.length distinct);
  let e2 = fresh ~offset_regions:false () in
  let offs2 =
    List.init 8 (fun _ ->
        let r = Regions.Region.newregion e2.lib in
        r land 4095)
  in
  check "no offsetting: one offset" 1 (List.length (List.sort_uniq compare offs2))

let test_rstralloc_not_cleared_and_separate () =
  let e = fresh ~safe:false () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r;
      let s = Regions.Region.rstralloc e.lib r 64 in
      (* Dirty it, delete, re-create: a pooled page must come back dirty,
         proving rstralloc does not clear (ralloc does). *)
      for i = 0 to 15 do
        Sim.Memory.store e.mem (s + (i * 4)) 0xABCD
      done;
      ignore (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      let r2 = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r2;
      let s2 = Regions.Region.rstralloc e.lib r2 64 in
      check_bool "pooled string page is dirty" true
        (Sim.Memory.peek e.mem s2 = 0xABCD
        || Sim.Memory.peek e.mem (s2 + 4) = 0xABCD);
      let o = Regions.Region.ralloc e.lib r2 (Regions.Cleanup.layout_words 16) in
      for i = 0 to 15 do
        check "ralloc cleared despite dirty page" 0 (Sim.Memory.load e.mem (o + (i * 4)))
      done)

let test_large_rstralloc () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let big = Regions.Region.rstralloc e.lib r 20_000 in
      check "regionof large start" r (Regions.Region.regionof e.lib big);
      check "regionof large end" r (Regions.Region.regionof e.lib (big + 19_996));
      Sim.Memory.store e.mem (big + 19_996) 77;
      check "large writable" 77 (Sim.Memory.load e.mem (big + 19_996));
      check_bool "delete with large object" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "large pages reclaimed" 0 (Regions.Region.live_pages e.lib))

let test_object_too_large_rejected () =
  let e = fresh () in
  let r = Regions.Region.newregion e.lib in
  (match Regions.Region.ralloc e.lib r (Regions.Cleanup.layout_words 2000) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Regions.Region.rarrayalloc e.lib r ~n:600 node_layout with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_region_stats () =
  let e = fresh ~safe:false () in
  in_frame e (fun fr ->
      let r1 = Regions.Region.newregion e.lib in
      let r2 = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r1;
      Regions.Mutator.set_local e.mut fr 1 r2;
      ignore (Regions.Region.ralloc e.lib r1 (Regions.Cleanup.layout_words 3));
      ignore (Regions.Region.ralloc e.lib r1 plain2);
      ignore (Regions.Region.ralloc e.lib r2 plain2);
      let rs = Regions.Region.rstats e.lib in
      check "total regions" 2 (Regions.Rstats.total_regions rs);
      check "max live regions" 2 (Regions.Rstats.max_live_regions rs);
      check "max region bytes" 20 (Regions.Rstats.max_region_bytes rs);
      ignore (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "live after delete" 1 (Regions.Rstats.live_regions rs);
      let s = Regions.Region.stats e.lib in
      check "allocs" 3 (Alloc.Stats.allocs s);
      check "total bytes" 28 (Alloc.Stats.total_bytes s);
      check "live bytes drops" 8 (Alloc.Stats.live_bytes s))

(* ------------------------------------------------------------------ *)
(* Safety: reference counting *)

let test_unsafe_delete_always_succeeds () =
  let e = fresh ~safe:false () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      (* An external reference exists, but unsafe regions don't care. *)
      Sim.Memory.store e.mem (Regions.Mutator.global_addr e.mut 0) p;
      check_bool "unsafe delete succeeds" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_safe_delete_local_only () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      (* Object pointer also in a local: locals don't block deletion of
         their own handle?  They do — any live region pointer into r
         other than the handle itself is an external reference. *)
      ignore p;
      check_bool "delete with only the handle" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_safe_delete_blocked_by_local () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      Regions.Region.set_local_ptr e.lib fr 1 p;
      check_bool "blocked by live local pointer" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check_bool "handle intact" true (Regions.Mutator.get_local fr 0 = r);
      (* Clearing the stale pointer unblocks deletion: the paper's
         "finding stale pointers" porting step. *)
      Regions.Region.set_local_ptr e.lib fr 1 0;
      check_bool "deletable after clearing" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_safe_delete_blocked_by_global () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      let g = Regions.Mutator.global_addr e.mut 0 in
      Regions.Region.write_ptr e.lib ~addr:g p;
      check "global write counted" 1 (Regions.Region.refcount e.lib r);
      check_bool "blocked by global" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      Regions.Region.write_ptr e.lib ~addr:g 0;
      check "overwrite decrements" 0 (Regions.Region.refcount e.lib r);
      check_bool "deletable after null" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_sameregion_not_counted () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let a = Regions.Region.ralloc e.lib r node_layout in
      let b = Regions.Region.ralloc e.lib r node_layout in
      (* a->next = b: a pointer within one region is not external. *)
      Regions.Region.write_ptr e.lib ~addr:(a + 4) b;
      check "sameregion write uncounted" 0 (Regions.Region.refcount e.lib r);
      (* A cycle within the region is collectable (the amelioration of
         reference counting the paper highlights). *)
      Regions.Region.write_ptr e.lib ~addr:(b + 4) a;
      check_bool "cycle within region deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_cross_region_pointer_blocks_and_cleanup_releases () =
  let e = fresh () in
  in_frame e (fun fr ->
      let ra = Regions.Region.newregion e.lib in
      let rb = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 ra;
      Regions.Region.set_local_ptr e.lib fr 1 rb;
      let a = Regions.Region.ralloc e.lib ra node_layout in
      let b = Regions.Region.ralloc e.lib rb node_layout in
      (* a.next = b: region A holds a reference into region B. *)
      Regions.Region.write_ptr e.lib ~addr:(a + 4) b;
      check "B has one external ref" 1 (Regions.Region.refcount e.lib rb);
      check_bool "B not deletable" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 1)));
      (* Deleting A runs cleanup_list, destroying a.next and so
         decrementing B's count. *)
      check_bool "A deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "B released by A's cleanup" 0 (Regions.Region.refcount e.lib rb);
      check_bool "B now deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 1))))

let test_region_handle_in_heap_blocks () =
  let e = fresh () in
  in_frame e (fun fr ->
      let ra = Regions.Region.newregion e.lib in
      let rb = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 ra;
      Regions.Region.set_local_ptr e.lib fr 1 rb;
      (* Store region B's handle inside region A: a Region value is a
         region pointer to the region structure, so this is a counted
         reference into B. *)
      let cell = Regions.Region.ralloc e.lib ra node_layout in
      Regions.Region.write_ptr e.lib ~addr:(cell + 4) rb;
      check "handle in heap counted" 1 (Regions.Region.refcount e.lib rb);
      check_bool "B blocked" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 1)));
      check_bool "A deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check_bool "B unblocked" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 1))))

let test_delete_from_global_handle () =
  let e = fresh () in
  let r = Regions.Region.newregion e.lib in
  let g = Regions.Mutator.global_addr e.mut 3 in
  Regions.Region.write_ptr e.lib ~addr:g r;
  check "handle itself counted" 1 (Regions.Region.refcount e.lib r);
  in_frame e (fun _fr ->
      check_bool "delete via global handle" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_memory g));
      check "global nulled" 0 (Sim.Memory.load e.mem g))

let test_two_handles_block () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      Regions.Region.set_local_ptr e.lib fr 1 r;
      check_bool "second handle blocks" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      Regions.Region.set_local_ptr e.lib fr 1 0;
      check_bool "single handle deletes" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_scan_unscan_balance () =
  let e = fresh () in
  in_frame e (fun fr0 ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr0 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      Regions.Region.set_local_ptr e.lib fr0 1 p;
      (* In a callee, try (and fail) to delete: the scan counts fr0's
         pointers; on return the unscan must undo them exactly. *)
      Regions.Mutator.with_frame e.mut ~nslots:2 ~ptr_slots:[ 0 ] (fun fr1 ->
          Regions.Region.set_local_ptr e.lib fr1 0 r;
          check_bool "blocked from callee" false
            (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr1, 0)));
          (* After the failed delete, fr0 is still scanned (counted). *)
          check "stored count reflects scanned fr0" 2
            (Regions.Region.refcount e.lib r));
      (* Leaving fr1 returned into scanned fr0; then nothing: fr0 is
         unscanned only when control returns into it. *)
      check "exact count consistent" 2 (Regions.Region.exact_refcount e.lib r);
      Regions.Region.set_local_ptr e.lib fr0 1 0;
      check_bool "deletable once pointer cleared" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr0, 0))))

let test_failed_delete_region_still_usable () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      Regions.Region.set_local_ptr e.lib fr 1 p;
      check_bool "delete fails" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      (* The region must be fully usable afterwards. *)
      let q = Regions.Region.ralloc e.lib r node_layout in
      Sim.Memory.store e.mem q 5;
      check "allocation works after failed delete" 5 (Sim.Memory.load e.mem q))

let test_custom_cleanup_runs () =
  let e = fresh () in
  let hits = ref [] in
  let id =
    Regions.Cleanup.register_custom
      (Regions.Region.cleanups e.lib)
      ~size_bytes:12
      (fun _mem addr -> hits := addr :: !hits)
  in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let a = Regions.Region.ralloc_custom e.lib r id in
      let b = Regions.Region.ralloc_custom e.lib r id in
      check_bool "delete" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "both finalisers ran" 2 (List.length !hits);
      check_bool "addresses seen" true
        (List.mem a !hits && List.mem b !hits))

let test_array_cleanup () =
  let e = fresh () in
  in_frame e (fun fr ->
      let ra = Regions.Region.newregion e.lib in
      let rb = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 ra;
      Regions.Region.set_local_ptr e.lib fr 1 rb;
      let arr = Regions.Region.rarrayalloc e.lib ra ~n:10 node_layout in
      (* Array contents are cleared. *)
      for i = 0 to 19 do
        check "array cleared" 0 (Sim.Memory.load e.mem (arr + (i * 4)))
      done;
      (* Point three elements into region B. *)
      let targets = List.map (fun _ -> Regions.Region.ralloc e.lib rb node_layout) [ 1; 2; 3 ] in
      List.iteri
        (fun i tgt -> Regions.Region.write_ptr e.lib ~addr:(arr + (i * 8) + 4) tgt)
        targets;
      check "three refs into B" 3 (Regions.Region.refcount e.lib rb);
      check_bool "delete A" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "array cleanup destroyed all refs" 0 (Regions.Region.refcount e.lib rb))

let test_unsafe_skips_cleanups () =
  let e = fresh ~safe:false () in
  let hits = ref 0 in
  let id =
    Regions.Cleanup.register_custom
      (Regions.Region.cleanups e.lib)
      ~size_bytes:8
      (fun _ _ -> incr hits)
  in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Mutator.set_local e.mut fr 0 r;
      ignore (Regions.Region.ralloc_custom e.lib r id);
      ignore (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check "unsafe runs no cleanups" 0 !hits)

let test_eager_locals_ablation () =
  let e = fresh ~eager_locals:true () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      check "handle counted eagerly" 1 (Regions.Region.refcount e.lib r);
      let p = Regions.Region.ralloc e.lib r node_layout in
      Regions.Region.set_local_ptr e.lib fr 1 p;
      check "object pointer counted eagerly" 2 (Regions.Region.refcount e.lib r);
      check_bool "blocked" false
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      Regions.Region.set_local_ptr e.lib fr 1 0;
      check "count drops on overwrite" 1 (Regions.Region.refcount e.lib r);
      check_bool "deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0))))

let test_safety_cost_accounts () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let c = Sim.Memory.cost e.mem in
      let g = Regions.Mutator.global_addr e.mut 0 in
      let p = Regions.Region.ralloc e.lib r node_layout in
      let rc0 = Sim.Cost.refcount_instrs c in
      Regions.Region.write_ptr e.lib ~addr:g p;
      check "global write costs 16" 16 (Sim.Cost.refcount_instrs c - rc0);
      let rc1 = Sim.Cost.refcount_instrs c in
      let q = Regions.Region.ralloc e.lib r node_layout in
      let rc1b = Sim.Cost.refcount_instrs c in
      check "ralloc costs no refcounting" rc1 rc1b;
      Regions.Region.write_ptr e.lib ~addr:(p + 4) q;
      check "region write costs 23" 23 (Sim.Cost.refcount_instrs c - rc1b);
      let rc2 = Sim.Cost.refcount_instrs c in
      Regions.Region.write_ptr e.lib ~same_region_hint:true ~addr:(q + 4) p;
      check "hinted write costs 2" 2 (Sim.Cost.refcount_instrs c - rc2);
      Regions.Region.write_ptr e.lib ~addr:g 0;
      let scan0 = Sim.Cost.stack_scan_instrs c in
      let cl0 = Sim.Cost.cleanup_instrs c in
      check_bool "delete" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      check_bool "stack scan charged" true (Sim.Cost.stack_scan_instrs c > scan0);
      check_bool "cleanup charged" true (Sim.Cost.cleanup_instrs c > cl0))

(* ------------------------------------------------------------------ *)
(* Property: stored + unscanned-frame counts = model of external refs *)

let qcheck_refcount_model =
  let gen = QCheck.(list (pair (int_bound 5) (pair (int_bound 3) (int_bound 3)))) in
  QCheck.Test.make ~count:100 ~name:"refcount agrees with a reference model"
    gen (fun ops ->
      let e = fresh () in
      Regions.Mutator.with_frame e.mut ~nslots:4 ~ptr_slots:[ 0; 1; 2; 3 ]
        (fun fr ->
          (* Four regions, each with one 4-pointer-field object. *)
          let obj_layout =
            Regions.Cleanup.layout ~size_bytes:16 ~ptr_offsets:[ 0; 4; 8; 12 ]
          in
          let regions =
            Array.init 4 (fun i ->
                let r = Regions.Region.newregion e.lib in
                Regions.Region.set_local_ptr e.lib fr i r;
                r)
          in
          let objs =
            Array.map (fun r -> Regions.Region.ralloc e.lib r obj_layout) regions
          in
          List.iter
            (fun (op, (i, j)) ->
              match op with
              | 0 | 1 ->
                  (* objs.(i).field(op) <- objs.(j) *)
                  Regions.Region.write_ptr e.lib
                    ~addr:(objs.(i) + (op * 4))
                    objs.(j)
              | 2 ->
                  (* global slot i <- objs.(j) *)
                  Regions.Region.write_ptr e.lib
                    ~addr:(Regions.Mutator.global_addr e.mut i)
                    objs.(j)
              | 3 ->
                  Regions.Region.write_ptr e.lib ~addr:(objs.(i) + 8) 0
              | 4 | 5 ->
                  Regions.Region.write_ptr e.lib
                    ~addr:(Regions.Mutator.global_addr e.mut i)
                    0
              | _ -> ())
            ops;
          (* Model: external references to region k = pointers to its
             object or structure from globals, other regions' objects,
             and frame slots. *)
          let model = Array.make 4 0 in
          let classify v =
            Array.iteri
              (fun k r -> if Regions.Region.regionof e.lib v = r then model.(k) <- model.(k) + 1)
              regions
          in
          for g = 0 to 3 do
            classify (Sim.Memory.peek e.mem (Regions.Mutator.global_addr e.mut g))
          done;
          Array.iteri
            (fun i o ->
              for f = 0 to 3 do
                let v = Sim.Memory.peek e.mem (o + (f * 4)) in
                (* sameregion pointers are not external *)
                if Regions.Region.regionof e.lib v <> regions.(i) then classify v
              done)
            objs;
          for s = 0 to 3 do
            classify (Regions.Mutator.get_local fr s)
          done;
          Array.for_all
            (fun k -> Regions.Region.exact_refcount e.lib regions.(k) = model.(k))
            [| 0; 1; 2; 3 |]
          |> fun ok ->
          ok
          && Array.for_all (fun k ->
                 Regions.Region.exact_refcount e.lib regions.(k) = model.(k))
               [| 0; 1; 2; 3 |]))

(* Random region workouts: arbitrary interleavings of region creation,
   allocation, pointer writes and deletion attempts must keep every
   internal invariant intact, and deleteregion must succeed exactly
   when one reference (the handle) remains. *)
let qcheck_region_ops_invariants =
  let gen =
    QCheck.(list (triple (int_bound 4) (int_bound 15) (int_bound 15)))
  in
  QCheck.Test.make ~count:80 ~name:"random region workouts keep invariants"
    gen (fun ops ->
      let e = fresh () in
      let ok = ref true in
      Regions.Mutator.with_frame e.mut ~nslots:1 ~ptr_slots:[] (fun _fr ->
          (* Region handles live in global words 0..15; objects are
             tracked OCaml-side per slot. *)
          let handle g = Regions.Mutator.global_addr e.mut g in
          let objects = Array.make 16 [] in
          let region_at g = Sim.Memory.peek e.mem (handle g) in
          let all_objects () = Array.to_list objects |> List.concat in
          List.iter
            (fun (op, a, b) ->
              match op with
              | 0 ->
                  if region_at a = 0 then begin
                    let r = Regions.Region.newregion e.lib in
                    Regions.Region.write_ptr e.lib ~addr:(handle a) r
                  end
              | 1 ->
                  if region_at a <> 0 then begin
                    let p = Regions.Region.ralloc e.lib (region_at a) node_layout in
                    objects.(a) <- p :: objects.(a)
                  end
              | 2 ->
                  if region_at a <> 0 then
                    ignore (Regions.Region.rstralloc e.lib (region_at a) (4 + b))
              | 3 -> (
                  (* random pointer writes between objects *)
                  match (objects.(a), objects.(b)) with
                  | src :: _, dst :: _ ->
                      Regions.Region.write_ptr e.lib ~addr:(src + 4) dst
                  | src :: _, [] ->
                      Regions.Region.write_ptr e.lib ~addr:(src + 4) 0
                  | [], _ -> ())
              | _ ->
                  if region_at a <> 0 then begin
                    let r = region_at a in
                    let expect = Regions.Region.exact_refcount e.lib r = 1 in
                    let deleted =
                      Regions.Region.deleteregion e.lib
                        (Regions.Region.In_memory (handle a))
                    in
                    if deleted <> expect then ok := false;
                    if deleted then begin
                      objects.(a) <- [];
                      (* other objects may still name the dead region's
                         addresses; the library must treat them as
                         non-regional from now on *)
                      List.iter
                        (fun o ->
                          if
                            Regions.Region.regionof_peek e.lib
                              (Sim.Memory.peek e.mem (o + 4))
                            = 0
                          then ()
                          else ())
                        (all_objects ())
                    end
                  end)
            ops;
          (match Regions.Region.check_invariants e.lib with
          | () -> ()
          | exception Failure _ -> ok := false);
          (* Tear-down: clear every handle and heap pointer, then all
             regions must be deletable. *)
          Array.iteri
            (fun g _ ->
              List.iter
                (fun o -> Regions.Region.write_ptr e.lib ~addr:(o + 4) 0)
                objects.(g))
            objects;
          for g = 0 to 15 do
            if region_at g <> 0 then begin
              if
                not
                  (Regions.Region.deleteregion e.lib
                     (Regions.Region.In_memory (handle g)))
              then ok := false
            end
          done;
          if Regions.Region.live_pages e.lib <> 0 then ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Debug: the region-debugging environment the paper wishes for *)

let test_debug_lists_blocking_references () =
  let e = fresh () in
  in_frame e (fun fr ->
      let ra = Regions.Region.newregion e.lib in
      let rb = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 ra;
      Regions.Region.set_local_ptr e.lib fr 1 rb;
      let b_obj = Regions.Region.ralloc e.lib rb node_layout in
      (* three distinct kinds of external reference into rb: *)
      Regions.Region.set_local_ptr e.lib fr 2 b_obj (* frame slot *);
      let g = Regions.Mutator.global_addr e.mut 0 in
      Regions.Region.write_ptr e.lib ~addr:g b_obj (* global *);
      let a_obj = Regions.Region.ralloc e.lib ra node_layout in
      Regions.Region.write_ptr e.lib ~addr:(a_obj + 4) b_obj (* heap *);
      let refs = Regions.Debug.references_into e.lib rb in
      (* handle in slot 1 + slot 2 + global + a_obj field = 4 *)
      check "four references" 4 (List.length refs);
      let kinds =
        List.map
          (function
            | Regions.Debug.In_frame_slot { slot; _ } -> Printf.sprintf "slot%d" slot
            | Regions.Debug.In_operand _ -> "operand"
            | Regions.Debug.In_global _ -> "global"
            | Regions.Debug.In_region_object { holder; _ } ->
                if holder = ra then "heap" else "other")
          refs
      in
      List.iter
        (fun k -> check_bool ("found " ^ k) true (List.mem k kinds))
        [ "slot1"; "slot2"; "global"; "heap" ];
      (* sameregion pointers are not reported *)
      let b2 = Regions.Region.ralloc e.lib rb node_layout in
      Regions.Region.write_ptr e.lib ~addr:(b2 + 4) b_obj;
      check "sameregion not external" 5
        (List.length (Regions.Debug.references_into e.lib rb) + 1);
      (* explain_delete names the blockers *)
      check_bool "explain says NOT deletable" true
        (let s = Regions.Debug.explain_delete e.lib rb in
         String.length s > 0
         &&
         let rec has i =
           i + 3 <= String.length s && (String.sub s i 3 = "NOT" || has (i + 1))
         in
         has 0);
      (* clear everything; only the handle remains *)
      Regions.Region.set_local_ptr e.lib fr 2 0;
      Regions.Region.write_ptr e.lib ~addr:g 0;
      Regions.Region.write_ptr e.lib ~addr:(a_obj + 4) 0;
      check "only the handle" 1
        (List.length (Regions.Debug.references_into e.lib rb));
      check_bool "now deletable" true
        (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 1))))

let test_debug_iter_objects () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let a = Regions.Region.ralloc e.lib r node_layout in
      let b = Regions.Region.rarrayalloc e.lib r ~n:3 node_layout in
      ignore (Regions.Region.rstralloc e.lib r 100) (* not visited *);
      let seen = ref [] in
      Regions.Debug.iter_objects e.lib r (fun ~obj ~cleanup:_ ->
          seen := obj :: !seen);
      check "two cleanup-bearing objects" 2 (List.length !seen);
      check_bool "both found" true (List.mem a !seen && List.mem b !seen))

let test_check_invariants_clean () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      for i = 1 to 300 do
        if i mod 3 = 0 then ignore (Regions.Region.rstralloc e.lib r (i mod 60 + 4))
        else ignore (Regions.Region.ralloc e.lib r node_layout)
      done;
      ignore (Regions.Region.rarrayalloc e.lib r ~n:20 node_layout);
      Regions.Region.check_invariants e.lib;
      ignore (Regions.Region.deleteregion e.lib (Regions.Region.In_frame (fr, 0)));
      Regions.Region.check_invariants e.lib)

let test_check_invariants_detects_corruption () =
  let e = fresh () in
  in_frame e (fun fr ->
      let r = Regions.Region.newregion e.lib in
      Regions.Region.set_local_ptr e.lib fr 0 r;
      let p = Regions.Region.ralloc e.lib r node_layout in
      (* Clobber the object's cleanup word with a bogus id. *)
      Sim.Memory.poke e.mem (p - 4) 9999;
      match Regions.Region.check_invariants e.lib with
      | () -> Alcotest.fail "expected corruption to be detected"
      | exception Failure _ -> ())

let test_region_allocator_view () =
  (* The malloc-shaped view the differential fuzzer drives. *)
  let e = fresh ~safe:false () in
  let r = Regions.Region.newregion e.lib in
  let a = Regions.Region.region_allocator e.lib r in
  let s = a.Alloc.Allocator.stats in
  let allocs0 = Alloc.Stats.allocs s in
  let p = a.malloc 10 in
  let q = a.malloc 30 in
  Alcotest.(check int) "usable is the rounded request" 12 (a.usable_size p);
  Alcotest.(check int) "usable q" 32 (a.usable_size q);
  Alcotest.(check bool) "same region" true
    (Regions.Region.regionof e.lib p = r && Regions.Region.regionof e.lib q = r);
  a.free p (* no per-object free: storage returns with the region *);
  Alcotest.(check int) "free released nothing" 0 (Alloc.Stats.frees s);
  a.check_heap ();
  let slot = Regions.Mutator.global_addr e.mut 0 in
  Sim.Memory.poke e.mem slot r;
  Alcotest.(check bool) "deleteregion succeeds" true
    (Regions.Region.deleteregion e.lib (Regions.Region.In_memory slot));
  Alcotest.(check int) "all frees land at deleteregion"
    (Alloc.Stats.allocs s - allocs0)
    (Alloc.Stats.frees s);
  Alcotest.(check int) "nothing live" 0 (Alloc.Stats.live_bytes s)

let test_region_oom_leaves_invariants () =
  let e = fresh ~safe:false () in
  let r = Regions.Region.newregion e.lib in
  let p = Regions.Region.rstralloc e.lib r 16 in
  Sim.Memory.store e.mem p 0xBEE5;
  let budget = ref 8 in
  Sim.Memory.set_oom_hook e.mem
    (Some
       (fun n ->
         budget := !budget - n;
         !budget >= 0));
  let faulted = ref false in
  (try
     for _ = 1 to 10_000 do
       ignore (Regions.Region.rstralloc e.lib r 512)
     done
   with Sim.Memory.Fault _ -> faulted := true);
  Alcotest.(check bool) "allocation faulted under page budget" true !faulted;
  (* The denied page must leave every region walkable and earlier
     objects untouched. *)
  Regions.Region.check_invariants e.lib;
  Alcotest.(check int) "object intact" 0xBEE5 (Sim.Memory.load e.mem p);
  Sim.Memory.set_oom_hook e.mem None;
  Alcotest.(check bool) "allocation recovers" true
    (Regions.Region.rstralloc e.lib r 512 <> 0);
  Regions.Region.check_invariants e.lib

(* ------------------------------------------------------------------ *)
(* Emulation *)

let test_emulation_basics () =
  let mem = Sim.Memory.create ~with_cache:false () in
  let a = Alloc.Lea.create mem in
  let emu = Regions.Emulation.create a in
  let r = Regions.Emulation.newregion emu in
  let p = Regions.Emulation.ralloc emu r 40 in
  check "cleared" 0 (Sim.Memory.load mem p);
  Sim.Memory.store mem p 9;
  let q = Regions.Emulation.ralloc emu r 40 in
  check_bool "distinct" true (p <> q);
  check "live regions" 1 (Regions.Emulation.live_regions emu);
  let live_before = Alloc.Stats.live_bytes a.Alloc.Allocator.stats in
  check_bool "overhead visible" true (live_before >= 2 * (40 + 8));
  Regions.Emulation.deleteregion emu r;
  check "all freed" 0 (Alloc.Stats.live_bytes a.Alloc.Allocator.stats);
  check "no live regions" 0 (Regions.Emulation.live_regions emu)

let test_emulation_frees_everything () =
  let mem = Sim.Memory.create ~with_cache:false () in
  let a = Alloc.Sun.create mem in
  let emu = Regions.Emulation.create a in
  let r = Regions.Emulation.newregion emu in
  for _ = 1 to 500 do
    ignore (Regions.Emulation.rstralloc emu r 60)
  done;
  Regions.Emulation.deleteregion emu r;
  check "everything freed" 0 (Alloc.Stats.live_bytes a.Alloc.Allocator.stats)

(* ------------------------------------------------------------------ *)
(* Vmalloc (related work, paper section 2) *)

let vm_fresh () =
  let mem = Sim.Memory.create ~with_cache:false () in
  (mem, Regions.Vmalloc.create mem)

let test_vmalloc_arena () =
  let mem, t = vm_fresh () in
  let r = Regions.Vmalloc.open_region t Regions.Vmalloc.Arena in
  let a = Regions.Vmalloc.alloc t r 10 in
  let b = Regions.Vmalloc.alloc t r 10 in
  check_bool "bump allocation is contiguous" true (b = a + 12);
  Sim.Memory.store mem a 7;
  (* free is a no-op for arenas: the block is not recycled *)
  Regions.Vmalloc.free t r a;
  let c = Regions.Vmalloc.alloc t r 10 in
  check_bool "arena free recycles nothing" true (c <> a);
  check "contents survive a no-op free" 7 (Sim.Memory.load mem a);
  Regions.Vmalloc.close_region t r;
  check "all accounted free after close" 0
    (Alloc.Stats.live_bytes (Regions.Vmalloc.stats t))

let test_vmalloc_pool () =
  let _mem, t = vm_fresh () in
  let r = Regions.Vmalloc.open_region t (Regions.Vmalloc.Pool 24) in
  let a = Regions.Vmalloc.alloc t r 24 in
  let _b = Regions.Vmalloc.alloc t r 24 in
  Regions.Vmalloc.free t r a;
  check "pool recycles the freed element" a (Regions.Vmalloc.alloc t r 24);
  (match Regions.Vmalloc.alloc t r 16 with
  | _ -> Alcotest.fail "expected pool size mismatch"
  | exception Invalid_argument _ -> ());
  Regions.Vmalloc.close_region t r

let test_vmalloc_best () =
  let _mem, t = vm_fresh () in
  let r = Regions.Vmalloc.open_region t Regions.Vmalloc.Best in
  let a = Regions.Vmalloc.alloc t r 100 in
  let _b = Regions.Vmalloc.alloc t r 40 in
  Regions.Vmalloc.free t r a;
  (* a freed 100-byte block satisfies an 80-byte request *)
  check "first fit reuses the freed block" a (Regions.Vmalloc.alloc t r 80);
  (* but not a 200-byte one *)
  check_bool "too-small blocks are skipped" true
    (Regions.Vmalloc.alloc t r 200 <> a);
  Regions.Vmalloc.close_region t r

let test_vmalloc_close_recycles () =
  let _mem, t = vm_fresh () in
  let r1 = Regions.Vmalloc.open_region t Regions.Vmalloc.Arena in
  for _ = 1 to 500 do
    ignore (Regions.Vmalloc.alloc t r1 64)
  done;
  let os = Regions.Vmalloc.os_bytes t in
  Regions.Vmalloc.close_region t r1;
  check "closed" 0 (Regions.Vmalloc.live_regions t);
  let r2 = Regions.Vmalloc.open_region t Regions.Vmalloc.Best in
  for _ = 1 to 400 do
    ignore (Regions.Vmalloc.alloc t r2 64)
  done;
  check "pages recycled across regions" os (Regions.Vmalloc.os_bytes t);
  Regions.Vmalloc.close_region t r2

let test_vmalloc_errors () =
  let _mem, t = vm_fresh () in
  let r = Regions.Vmalloc.open_region t Regions.Vmalloc.Arena in
  Regions.Vmalloc.close_region t r;
  (match Regions.Vmalloc.alloc t r 8 with
  | _ -> Alcotest.fail "expected closed-region error"
  | exception Invalid_argument _ -> ());
  (match Regions.Vmalloc.close_region t r with
  | _ -> Alcotest.fail "expected double-close error"
  | exception Invalid_argument _ -> ());
  match Regions.Vmalloc.open_region t (Regions.Vmalloc.Pool 0) with
  | _ -> Alcotest.fail "expected bad pool size"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Local counts (parallel regions, paper section 1) *)

let test_local_counts_basics () =
  let t = Regions.Local_counts.create ~nprocs:3 in
  Regions.Local_counts.acquire t ~proc:0;
  Regions.Local_counts.acquire t ~proc:1;
  check "sum" 2 (Regions.Local_counts.sum t);
  check "local 0" 1 (Regions.Local_counts.local t ~proc:0);
  check_bool "not deletable" false (Regions.Local_counts.deletable t);
  Regions.Local_counts.release t ~proc:0;
  Regions.Local_counts.release t ~proc:1;
  check_bool "deletable" true (Regions.Local_counts.deletable t);
  check_bool "try_delete" true (Regions.Local_counts.try_delete t);
  check_bool "deleted" true (Regions.Local_counts.deleted t);
  match Regions.Local_counts.acquire t ~proc:0 with
  | () -> Alcotest.fail "expected Invalid_argument after deletion"
  | exception Invalid_argument _ -> ()

let test_local_counts_negative () =
  (* Process 1 releases a reference created by process 0: its local
     count goes negative without synchronisation, and the sum is still
     right. *)
  let t = Regions.Local_counts.create ~nprocs:2 in
  Regions.Local_counts.acquire t ~proc:0;
  Regions.Local_counts.transfer t ~from_proc:0 ~to_proc:1;
  check "proc 0 back to zero" 0 (Regions.Local_counts.local t ~proc:0);
  check "proc 1 holds it" 1 (Regions.Local_counts.local t ~proc:1);
  (* proc 0 destroys the reference proc 1 was credited with: its local
     count goes negative, no synchronisation needed *)
  Regions.Local_counts.release t ~proc:0;
  check "negative local count" (-1) (Regions.Local_counts.local t ~proc:0);
  check "sum zero" 0 (Regions.Local_counts.sum t);
  check_bool "deletable with mixed history" true (Regions.Local_counts.deletable t)

let test_local_counts_delete () =
  let t = Regions.Local_counts.create ~nprocs:2 in
  check_bool "fresh counter deletable" true (Regions.Local_counts.try_delete t);
  check_bool "double delete refused" false (Regions.Local_counts.try_delete t)

let qcheck_local_counts_model =
  (* Random interleavings of acquire/transfer/release across processes
     against a reference model holding the multiset of live refs. *)
  let gen = QCheck.(list (pair (int_bound 2) (pair (int_bound 3) (int_bound 3)))) in
  QCheck.Test.make ~count:200 ~name:"local counts sum equals live references"
    gen (fun ops ->
      let t = Regions.Local_counts.create ~nprocs:4 in
      let live = Array.make 4 0 in
      List.iter
        (fun (op, (p, q)) ->
          match op with
          | 0 ->
              Regions.Local_counts.acquire t ~proc:p;
              live.(p) <- live.(p) + 1
          | 1 ->
              if live.(p) > 0 then begin
                Regions.Local_counts.transfer t ~from_proc:p ~to_proc:q;
                live.(p) <- live.(p) - 1;
                live.(q) <- live.(q) + 1
              end
          | _ ->
              if live.(p) > 0 then begin
                Regions.Local_counts.release t ~proc:p;
                live.(p) <- live.(p) - 1
              end)
        ops;
      let total = Array.fold_left ( + ) 0 live in
      Regions.Local_counts.sum t = total
      && Regions.Local_counts.deletable t = (total = 0))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "regions"
    [
      ( "mutator",
        [
          tc "frames" `Quick test_mutator_frames;
          tc "with_frame exception" `Quick test_mutator_with_frame_exception;
          tc "deep stack" `Quick test_mutator_deep_stack;
          tc "globals + roots" `Quick test_mutator_globals;
          tc "unscan hook" `Quick test_mutator_unscan_hook;
        ] );
      ( "cleanup",
        [
          tc "registry" `Quick test_cleanup_registry;
          tc "layout validation" `Quick test_cleanup_layout_validation;
        ] );
      ( "alloc",
        [
          tc "basics (safe)" `Quick (test_alloc_basics ~safe:true);
          tc "basics (unsafe)" `Quick (test_alloc_basics ~safe:false);
          tc "many pages (safe)" `Quick (test_alloc_many_pages ~safe:true);
          tc "many pages (unsafe)" `Quick (test_alloc_many_pages ~safe:false);
          tc "page pool reuse" `Quick test_page_pool_reuse;
          tc "region offsetting" `Quick test_region_offsetting;
          tc "rstralloc uncleared/separate" `Quick
            test_rstralloc_not_cleared_and_separate;
          tc "large rstralloc" `Quick test_large_rstralloc;
          tc "oversized rejected" `Quick test_object_too_large_rejected;
          tc "statistics" `Quick test_region_stats;
          tc "region_allocator view" `Quick test_region_allocator_view;
          tc "OOM leaves invariants" `Quick test_region_oom_leaves_invariants;
        ] );
      ( "safety",
        [
          tc "unsafe always deletes" `Quick test_unsafe_delete_always_succeeds;
          tc "delete with only handle" `Quick test_safe_delete_local_only;
          tc "blocked by local" `Quick test_safe_delete_blocked_by_local;
          tc "blocked by global" `Quick test_safe_delete_blocked_by_global;
          tc "sameregion & cycles" `Quick test_sameregion_not_counted;
          tc "cross-region + cleanup" `Quick
            test_cross_region_pointer_blocks_and_cleanup_releases;
          tc "handle stored in heap" `Quick test_region_handle_in_heap_blocks;
          tc "delete via global handle" `Quick test_delete_from_global_handle;
          tc "two handles block" `Quick test_two_handles_block;
          tc "scan/unscan balance" `Quick test_scan_unscan_balance;
          tc "failed delete leaves region usable" `Quick
            test_failed_delete_region_still_usable;
          tc "custom cleanup" `Quick test_custom_cleanup_runs;
          tc "array cleanup" `Quick test_array_cleanup;
          tc "unsafe skips cleanups" `Quick test_unsafe_skips_cleanups;
          tc "eager locals ablation" `Quick test_eager_locals_ablation;
          tc "barrier instruction costs" `Quick test_safety_cost_accounts;
          QCheck_alcotest.to_alcotest qcheck_refcount_model;
          QCheck_alcotest.to_alcotest qcheck_region_ops_invariants;
        ] );
      ( "debug",
        [
          tc "lists blocking references" `Quick
            test_debug_lists_blocking_references;
          tc "iter objects" `Quick test_debug_iter_objects;
          tc "invariants clean" `Quick test_check_invariants_clean;
          tc "invariants detect corruption" `Quick
            test_check_invariants_detects_corruption;
        ] );
      ( "emulation",
        [
          tc "basics" `Quick test_emulation_basics;
          tc "frees everything" `Quick test_emulation_frees_everything;
        ] );
      ( "vmalloc",
        [
          tc "arena policy" `Quick test_vmalloc_arena;
          tc "pool policy" `Quick test_vmalloc_pool;
          tc "best policy" `Quick test_vmalloc_best;
          tc "close recycles pages" `Quick test_vmalloc_close_recycles;
          tc "errors" `Quick test_vmalloc_errors;
        ] );
      ( "local counts",
        [
          tc "basics" `Quick test_local_counts_basics;
          tc "negative locals are fine" `Quick test_local_counts_negative;
          tc "delete paths" `Quick test_local_counts_delete;
          QCheck_alcotest.to_alcotest qcheck_local_counts_model;
        ] );
    ]
