(* Tests for the multi-mutator server engine and the region bump fast
   path: N=1 scheduling is byte-identical to the legacy sequential
   program on every allocator column, schedules are deterministic in
   (seed, N), and the bump path changes charged instructions but never
   addresses or answers. *)

module Api = Workloads.Api
module Server = Workloads.Server
module Region = Regions.Region

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_with mode f =
  let api = Api.create ~with_cache:false mode in
  let o = f api in
  (Workloads.Results.collect api ~workload:"server" ~summary:"", o)

let small_params seed =
  { Server.mutators = 1; requests = 40; quantum = 8; seed; bump = false }

(* N=1 under the scheduler (bump off) must be byte-identical to the
   plain sequential loop in every mode: same cycles, same per-context
   instruction counts, same stalls, same footprint, same answer. *)
let qcheck_n1_matches_sequential =
  QCheck.Test.make ~count:6 ~name:"server: N=1 schedule == sequential (all modes)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      List.for_all
        (fun mode ->
          let p = small_params seed in
          let r1, o1 = run_with mode (fun api -> Server.run api p) in
          let r2, o2 = run_with mode (fun api -> Server.run_sequential api p) in
          r1 = r2
          && o1.Server.checksum = o2.Server.checksum
          && o1.Server.served = o2.Server.served
          && o1.Server.allocs = o2.Server.allocs)
        Api.all_modes)

(* Same seed, same N: the interleaving (hash), every count and the
   full measurement record are identical run to run. *)
let qcheck_deterministic =
  QCheck.Test.make ~count:4 ~name:"server: same seed+N => identical schedule"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let p =
        { Server.mutators = 4; requests = 120; quantum = 8; seed; bump = true }
      in
      let mode = Api.Region { safe = true } in
      let r1, o1 = run_with mode (fun api -> Server.run api p) in
      let r2, o2 = run_with mode (fun api -> Server.run api p) in
      r1 = r2 && o1 = o2
      && o1.Server.interleave_hash = o2.Server.interleave_hash)

(* Bump on vs off: identical addresses (checksum), answers and
   footprint; strictly fewer charged alloc instructions; live fast-path
   counters. *)
let test_bump_equivalence () =
  List.iter
    (fun safe ->
      let mode = Api.Region { safe } in
      let p =
        { Server.mutators = 4; requests = 200; quantum = 8; seed = 7; bump = false }
      in
      let r_off, o_off = run_with mode (fun api -> Server.run api p) in
      let r_on, o_on =
        run_with mode (fun api -> Server.run api { p with Server.bump = true })
      in
      check "served" o_off.Server.served o_on.Server.served;
      check "checksum" o_off.Server.checksum o_on.Server.checksum;
      check "os bytes" r_off.Workloads.Results.os_bytes
        r_on.Workloads.Results.os_bytes;
      check "base instrs" r_off.Workloads.Results.base_instrs
        r_on.Workloads.Results.base_instrs;
      check_bool "fewer alloc instrs" true
        (r_on.Workloads.Results.alloc_instrs
        < r_off.Workloads.Results.alloc_instrs);
      check_bool "fast path hit" true (o_on.Server.bump_stats.Region.bs_hits > 0);
      check "no hits with bump off" 0 o_off.Server.bump_stats.Region.bs_hits)
    [ true; false ]

(* Mid-request handoffs put several alloc regions on the shared page
   map at once: refills must observe contention. *)
let test_contended_refills () =
  let p =
    { Server.mutators = 4; requests = 400; quantum = 4; seed = 11; bump = true }
  in
  let _, o = run_with (Api.Region { safe = true }) (fun api -> Server.run api p) in
  let bs = o.Server.bump_stats in
  check_bool "refills happened" true (bs.Region.bs_refills > 0);
  check_bool "contended refills observed" true
    (bs.Region.bs_contended_refills > 0);
  check_bool "hits dominate refills" true
    (bs.Region.bs_hits > bs.Region.bs_refills);
  check_bool "handoffs counted" true (o.Server.handoffs > 0)

(* Fairness: equal weights and quotas must spread steps evenly. *)
let test_fairness () =
  let p =
    { Server.mutators = 4; requests = 400; quantum = 8; seed = 3; bump = true }
  in
  let _, o = run_with (Api.Region { safe = true }) (fun api -> Server.run api p) in
  let steps = Array.map (fun m -> m.Server.ms_steps) o.Server.per_mutator in
  let mn = Array.fold_left min steps.(0) steps in
  let mx = Array.fold_left max steps.(0) steps in
  check_bool "within 15% of each other" true
    (float_of_int (mx - mn) /. float_of_int mx < 0.15);
  Array.iter
    (fun m -> check "served its quota" 100 m.Server.ms_served)
    o.Server.per_mutator

(* Region-level unit test: invariants hold with alloc regions open,
   deletion closes them, and a region handed from one mutator to
   another closes the first mutator's cache before reopening. *)
let test_region_bump_unit () =
  let api = Api.create ~with_cache:false (Api.Region { safe = true }) in
  let lib = Option.get (Api.region_lib api) in
  Api.enable_bump api;
  let layout = Regions.Cleanup.layout_words 4 in
  Api.with_frame api ~nslots:2 ~ptr_slots:[ 0; 1 ] (fun fr ->
      let r0 = Api.newregion api in
      Api.set_local_ptr api fr 0 r0;
      let addrs = Array.init 300 (fun _ -> Api.ralloc api r0 layout) in
      (* The alloc region is open: peek-based checks must still see a
         consistent structure. *)
      Region.check_invariants lib;
      let seen = ref 0 in
      Region.iter_objects_peek lib r0 (fun ~obj:_ ~cleanup:_ -> incr seen);
      check "all objects visible while open" 300 !seen;
      (* Hand the region to mutator 1: its allocations must continue
         exactly where mutator 0 stopped. *)
      Api.set_mutator api 1;
      let a = Api.ralloc api r0 layout in
      check_bool "continues after handoff" true (a > addrs.(299));
      Region.check_invariants lib;
      (* Delete with an open alloc region: close is automatic. *)
      let ok = Api.deleteregion api fr 0 in
      check_bool "delete with open alloc region" true ok;
      Region.check_invariants lib;
      let bs = Region.bump_stats lib in
      check_bool "hits" true (bs.Region.bs_hits > 0);
      check_bool "opens" true (bs.Region.bs_opens >= 2);
      check "all closed" bs.Region.bs_opens bs.Region.bs_closes)

(* Addresses with bump on equal addresses with bump off, allocation by
   allocation (stronger than the checksum). *)
let qcheck_bump_address_identity =
  QCheck.Test.make ~count:20 ~name:"bump path: identical addresses"
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(1 -- 60) (int_bound 200)))
    (fun (seed, sizes) ->
      let alloc_all bump =
        let api = Api.create ~with_cache:false (Api.Region { safe = true }) in
        if bump then Api.enable_bump api;
        Api.with_frame api ~nslots:1 ~ptr_slots:[ 0 ] (fun fr ->
            let r = Api.newregion api in
            Api.set_local_ptr api fr 0 r;
            let rng = Sim.Rng.create seed in
            List.map
              (fun s ->
                if Sim.Rng.bool rng then Api.rstralloc api r (1 + s)
                else
                  Api.ralloc api r
                    (Regions.Cleanup.layout_words (1 + (s mod 32))))
              sizes)
      in
      alloc_all true = alloc_all false)

(* Trace layer: Set_mutator records round-trip, and a recorded
   server-2 run replays to the same summary. *)
let test_trace_set_mutator_roundtrip () =
  let path = Filename.temp_file "server" ".trace" in
  let hdr =
    {
      Trace.Format.workload = "x";
      variant = "region";
      mode = "region-safe";
      size = "quick";
      seed = 0;
      build_id = "test";
    }
  in
  let w = Trace.Format.create_writer ~path hdr in
  Trace.Format.emit w (Trace.Format.Set_mutator { mid = 3; bump = true });
  Trace.Format.emit w (Trace.Format.Set_mutator { mid = 0; bump = false });
  Trace.Format.commit w ~summary:"s";
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.fail e
  | Ok rd ->
      (match Trace.Format.next rd with
      | Trace.Format.Set_mutator { mid; bump } ->
          check "mid" 3 mid;
          check_bool "bump" true bump
      | _ -> Alcotest.fail "expected Set_mutator");
      (match Trace.Format.next rd with
      | Trace.Format.Set_mutator { mid; bump } ->
          check "mid" 0 mid;
          check_bool "bump" false bump
      | _ -> Alcotest.fail "expected Set_mutator");
      Trace.Format.close rd);
  Sys.remove path

let test_record_replay_server () =
  let spec = Workloads.Workload.find "server-2" in
  let path = Filename.temp_file "server2" ".trace" in
  let live =
    Trace.Record.record ~out:path ~variant:"region" spec Workloads.Workload.Quick
  in
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.fail e
  | Ok rd ->
      let replayed = Trace.Replay.run rd (Api.Region { safe = true }) in
      Alcotest.(check string)
        "same summary" live.Workloads.Results.summary
        replayed.Workloads.Results.summary;
      check "same alloc instrs" live.Workloads.Results.alloc_instrs
        replayed.Workloads.Results.alloc_instrs;
      check "same refcount instrs" live.Workloads.Results.refcount_instrs
        replayed.Workloads.Results.refcount_instrs;
      check "same os bytes" live.Workloads.Results.os_bytes
        replayed.Workloads.Results.os_bytes;
      Trace.Format.close rd);
  Sys.remove path

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "server"
    [
      ( "engine",
        [
          QCheck_alcotest.to_alcotest qcheck_n1_matches_sequential;
          QCheck_alcotest.to_alcotest qcheck_deterministic;
          tc "bump on/off equivalence" `Quick test_bump_equivalence;
          tc "contended refills" `Quick test_contended_refills;
          tc "fairness" `Quick test_fairness;
        ] );
      ( "bump path",
        [
          tc "region unit" `Quick test_region_bump_unit;
          QCheck_alcotest.to_alcotest qcheck_bump_address_identity;
        ] );
      ( "trace",
        [
          tc "set_mutator roundtrip" `Quick test_trace_set_mutator_roundtrip;
          tc "record/replay server-2" `Quick test_record_replay_server;
        ] );
    ]
