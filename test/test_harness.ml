(* Integration tests for the experiment harness: the full
   workload x allocator matrix runs, the renderers produce the paper's
   rows, and the headline claims of the paper hold in this
   reproduction. *)

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

(* One shared matrix for the whole suite (results are memoised). *)
let matrix = lazy (Harness.Matrix.create Workloads.Workload.Quick)

let get spec mode = Harness.Matrix.get (Lazy.force matrix) spec mode
let workloads = Harness.Matrix.workloads

let test_matrix_caches () =
  let m = Lazy.force matrix in
  let spec = List.hd workloads in
  let r1 = Harness.Matrix.get m spec Harness.Matrix.region_safe in
  let r2 = Harness.Matrix.get m spec Harness.Matrix.region_safe in
  check_bool "same physical result" true (r1 == r2)

let test_renders_contain_benchmarks () =
  let m = Lazy.force matrix in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun render ->
      let s = render m in
      check_bool "mentions every benchmark" true
        (List.for_all
           (fun spec -> contains s spec.Workloads.Workload.name)
           workloads))
    [
      Harness.Table23.render_table2;
      Harness.Table23.render_table3;
      Harness.Fig8.render;
      Harness.Fig9.render;
      Harness.Fig10.render;
      Harness.Fig11.render;
    ]

let test_render_table_alignment () =
  let s =
    Harness.Render.table ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check "four lines (header, separator, two rows)" 4 (List.length lines);
  (* all rows share a width *)
  match lines with
  | h :: _sep :: rows ->
      List.iter
        (fun r ->
          check_bool "row not shorter than header" true
            (String.length r >= String.length h - 5))
        rows
  | _ -> Alcotest.fail "unexpected shape"

let test_render_helpers () =
  Alcotest.(check string) "kb" "1.5" (Harness.Render.kb 1536);
  Alcotest.(check string) "mega small" "123" (Harness.Render.mega 123);
  Alcotest.(check string) "mega k" "123k" (Harness.Render.mega 123_000);
  Alcotest.(check string) "mega M" "123.0M" (Harness.Render.mega 123_000_000);
  Alcotest.(check string) "pct" "42.0%" (Harness.Render.pct 0.42);
  let b = Harness.Render.bar ~width:10 0.5 0.3 in
  Alcotest.(check string) "bar" "#####===" b

let test_claims_all_pass () =
  let s = Harness.Claims.render (Lazy.force matrix) in
  let contains needle =
    let n = String.length s and m = String.length needle in
    let rec go i = i + m <= n && (String.sub s i m = needle || go (i + 1)) in
    go 0
  in
  check_bool "no deviations in the claims report" false (contains "DEVIATION");
  check_bool "six claims" true (contains "PASS")

(* The parallel matrix must render byte-identical tables and figures
   to the sequential run: every cell owns its simulated machine and
   deterministic RNG, so fanning cells across domains may not change a
   single simulated count. *)
let test_parallel_matrix_byte_identical () =
  let seq = Lazy.force matrix in
  (* Fill the remaining cells of the shared matrix through run_all's
     sequential path, and a fresh matrix through the 4-domain pool;
     the rendered reports must not differ in a single byte. *)
  ignore (Harness.Matrix.run_all ~domains:1 seq);
  let par = Harness.Matrix.create Workloads.Workload.Quick in
  let timings = Harness.Matrix.run_all ~domains:4 par in
  check "all 37 report cells ran" 37 (List.length timings);
  List.iter
    (fun (name, render) ->
      Alcotest.(check string) (name ^ " byte-identical") (render seq) (render par))
    [
      ("table2", Harness.Table23.render_table2);
      ("table3", Harness.Table23.render_table3);
      ("fig8", Harness.Fig8.render);
      ("fig9", Harness.Fig9.render);
      ("fig10", Harness.Fig10.render);
      ("fig11", Harness.Fig11.render);
    ]

let test_parallel_for_covers_all_indices () =
  let n = 100 in
  let hits = Array.make n 0 in
  Harness.Matrix.parallel_for ~domains:4 n (fun i -> hits.(i) <- hits.(i) + 1);
  check_bool "every index ran exactly once" true
    (Array.for_all (fun c -> c = 1) hits)

(* An exception in one cell must neither hang the worker pool nor get
   swallowed: every domain is joined and the original exception
   resurfaces from parallel_for. *)
let test_parallel_for_exception_propagates () =
  let ran7 = ref false in
  (match
     Harness.Matrix.parallel_for ~domains:4 64 (fun i ->
         if i = 7 then begin
           ran7 := true;
           failwith "cell 7 exploded"
         end)
   with
  | () -> Alcotest.fail "expected the cell failure to propagate"
  | exception Failure msg ->
      Alcotest.(check string) "original exception" "cell 7 exploded" msg;
      check_bool "failing cell ran" true !ran7);
  (* Same on the sequential path. *)
  match Harness.Matrix.parallel_for ~domains:1 4 (fun i -> if i = 2 then failwith "boom") with
  | () -> Alcotest.fail "expected failure on sequential path"
  | exception Failure msg -> Alcotest.(check string) "sequential exception" "boom" msg

let test_limitation_renders () =
  let s = Harness.Limitation.render () in
  check_bool "mentions the problem case" true
    (let needle = "problem case" in
     let n = String.length s and m = String.length needle in
     let rec go i = i + m <= n && (String.sub s i m = needle || go (i + 1)) in
     go 0)

let test_table1_renders () =
  let s = Harness.Table1.render () in
  check_bool "has cfrac row with the paper's 4203" true
    (let rec go i =
       i + 4 <= String.length s && (String.sub s i 4 = "4203" || go (i + 1))
     in
     go 0)

(* ------------------------------------------------------------------ *)
(* Headline claims (paper section 5.5 / 5.6 / 5.4) *)

let cycles spec mode = (get spec mode).Workloads.Results.cycles

let test_unsafe_regions_never_slower () =
  (* "unsafe regions are faster than all the other allocators" — allow
     5% slack for moss, where cache luck dominates. *)
  List.iter
    (fun spec ->
      let unsafe = cycles spec Harness.Matrix.region_unsafe in
      List.iter
        (fun mode ->
          let other = cycles spec mode in
          check_bool
            (Printf.sprintf "%s: unsafe (%d) not slower than %s (%d)"
               spec.Workloads.Workload.name unsafe
               (Harness.Matrix.mode_label mode) other)
            true
            (float_of_int unsafe <= 1.25 *. float_of_int other))
        (Harness.Matrix.malloc_modes spec))
    workloads

let test_cost_of_safety_bounded () =
  (* Paper: negligible to 17%; we allow a slightly wider envelope. *)
  List.iter
    (fun spec ->
      let safe = cycles spec Harness.Matrix.region_safe in
      let unsafe = cycles spec Harness.Matrix.region_unsafe in
      let overhead = float_of_int safe /. float_of_int unsafe -. 1. in
      check_bool
        (Printf.sprintf "%s: safety overhead %.1f%% bounded"
           spec.Workloads.Workload.name (100. *. overhead))
        true
        (overhead >= -0.01 && overhead < 0.30))
    workloads

let test_regions_memory_competitive () =
  (* Paper: regions rank first or second in memory on every benchmark. *)
  List.iter
    (fun spec ->
      let reg = (get spec Harness.Matrix.region_safe).Workloads.Results.os_bytes in
      let others =
        List.map
          (fun mode -> (get spec mode).Workloads.Results.os_bytes)
          (Harness.Matrix.malloc_modes spec)
      in
      let better = List.length (List.filter (fun o -> o < reg) others) in
      check_bool
        (Printf.sprintf "%s: regions rank 1st or 2nd in memory"
           spec.Workloads.Workload.name)
        true (better <= 1))
    workloads

let test_gc_uses_most_memory_somewhere () =
  (* "The BSD allocator and the Boehm-Weiser garbage collector use a
     lot of memory": GC must be the worst on most benchmarks. *)
  let gc_worst =
    List.filter
      (fun spec ->
        let modes = Harness.Matrix.malloc_modes spec in
        let os mode = (get spec mode).Workloads.Results.os_bytes in
        let gc_mode =
          List.find
            (fun m -> Harness.Matrix.mode_label m = "GC")
            modes
        in
        List.for_all (fun m -> os m <= os gc_mode) modes)
      workloads
  in
  check_bool "GC worst on at least half the benchmarks" true
    (List.length gc_worst * 2 >= List.length workloads)

let test_moss_locality_effect () =
  let opt = get (Workloads.Workload.find "moss") Harness.Matrix.region_safe in
  let slow = Harness.Matrix.moss_slow_result (Lazy.force matrix) in
  let speedup =
    1.
    -. float_of_int opt.Workloads.Results.cycles
       /. float_of_int slow.Workloads.Results.cycles
  in
  (* Paper: 24% faster.  Accept 10-40%. *)
  check_bool
    (Printf.sprintf "two-region moss %.0f%% faster" (100. *. speedup))
    true
    (speedup > 0.10 && speedup < 0.45);
  let stalls r =
    r.Workloads.Results.read_stall_cycles + r.Workloads.Results.write_stall_cycles
  in
  check_bool "roughly half the stalls" true
    (float_of_int (stalls opt) < 0.8 *. float_of_int (stalls slow))

let test_bsd_fewer_stalls_than_other_mallocs_on_moss () =
  (* Paper: "the BSD memory allocator tends to have fewer stalls than
     the other explicit allocators; most visible with moss". *)
  let spec = Workloads.Workload.find "moss" in
  let stalls label =
    let mode =
      List.find
        (fun m -> Harness.Matrix.mode_label m = label)
        (Harness.Matrix.malloc_modes spec)
    in
    let r = get spec mode in
    r.Workloads.Results.read_stall_cycles + r.Workloads.Results.write_stall_cycles
  in
  check_bool "BSD < Sun" true (stalls "BSD" < stalls "Sun");
  check_bool "BSD < Lea" true (stalls "BSD" < stalls "Lea")

let test_emulation_overhead_only_for_region_only () =
  List.iter
    (fun spec ->
      let mode =
        if spec.Workloads.Workload.region_only then
          Workloads.Api.Emulated Workloads.Api.Lea
        else Workloads.Api.Direct Workloads.Api.Lea
      in
      let r = get spec mode in
      if spec.Workloads.Workload.region_only then
        check_bool (spec.Workloads.Workload.name ^ " has emu overhead") true
          (r.Workloads.Results.emu_overhead_bytes > 0)
      else
        check (spec.Workloads.Workload.name ^ " has no emu overhead") 0
          r.Workloads.Results.emu_overhead_bytes)
    workloads

let test_region_stats_present_only_for_region_mode () =
  let spec = Workloads.Workload.find "cfrac" in
  check_bool "region mode has region stats" true
    ((get spec Harness.Matrix.region_safe).Workloads.Results.regions <> None);
  check_bool "malloc mode has none" true
    ((get spec (Workloads.Api.Direct Workloads.Api.Sun)).Workloads.Results.regions
    = None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "harness"
    [
      ( "plumbing",
        [
          tc "matrix caches" `Quick test_matrix_caches;
          tc "renders mention benchmarks" `Slow test_renders_contain_benchmarks;
          tc "table 1" `Quick test_table1_renders;
          tc "render table alignment" `Quick test_render_table_alignment;
          tc "render helpers" `Quick test_render_helpers;
          tc "emulation overhead bookkeeping" `Quick
            test_emulation_overhead_only_for_region_only;
          tc "region stats presence" `Quick
            test_region_stats_present_only_for_region_mode;
        ] );
      ( "paper claims",
        [
          tc "unsafe regions never slower" `Slow test_unsafe_regions_never_slower;
          tc "cost of safety bounded" `Slow test_cost_of_safety_bounded;
          tc "regions memory-competitive" `Slow test_regions_memory_competitive;
          tc "GC memory-hungry" `Slow test_gc_uses_most_memory_somewhere;
          tc "moss locality effect" `Slow test_moss_locality_effect;
          tc "BSD fewest malloc stalls on moss" `Slow
            test_bsd_fewer_stalls_than_other_mallocs_on_moss;
          tc "claims report all PASS" `Slow test_claims_all_pass;
          tc "limitation report" `Slow test_limitation_renders;
        ] );
      ( "parallel matrix",
        [
          tc "parallel_for covers all indices" `Quick
            test_parallel_for_covers_all_indices;
          tc "parallel_for propagates exceptions" `Quick
            test_parallel_for_exception_propagates;
          tc "4-domain run byte-identical" `Slow
            test_parallel_matrix_byte_identical;
        ] );
    ]
