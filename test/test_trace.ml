(* The trace record/replay engine: the binary format round-trips
   byte-for-byte, damage (truncation, torn trailing records) is
   rejected rather than misread, a recorded workload replays to the
   same allocator-side counts as full execution, and the ops-trace
   encode/decode round trip is observationally identical to direct
   interpretation — for every allocator. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tmp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trace-test-%d-%d.trace" (Unix.getpid ()) !n)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let hdr =
  {
    Trace.Format.workload = "synthetic";
    variant = "malloc";
    mode = "lea";
    size = "quick";
    seed = 42;
    build_id = "test-build";
  }

(* A record stream exercising every constructor a workload trace can
   contain, including a layout that appears twice (the reader interns
   layouts by their encoded bytes — both sightings must decode to the
   same value) and one that appears once. *)
let sample_records =
  let open Trace.Format in
  let lay_a = Regions.Cleanup.layout ~size_bytes:12 ~ptr_offsets:[ 0; 8 ] in
  let lay_b = Regions.Cleanup.layout ~size_bytes:40 ~ptr_offsets:[] in
  [
    Malloc { size = 40 };
    Newregion;
    Ralloc { rid = 0; layout = lay_a };
    Rstralloc { rid = 0; size = 17 };
    Rarrayalloc { rid = 0; n = 3; layout = lay_b };
    Ralloc { rid = 0; layout = lay_a };
    Frame_push { nslots = 2; ptr_slots = [ 0; 1 ] };
    Set_local { frame = 0; slot = 0; v = Raw 5 };
    Set_local_ptr { frame = 0; slot = 1; v = Obj (0, 4) };
    Store_ptr { addr = Obj (0, 0); v = Reg 0 };
    Poke { addr = 100; v = 42 };
    Poke { addr = 104; v = -7 };
    Poke_byte { addr = 101; v = 200 };
    Poke_bytes { addr = 104; s = "hi\000there" };
    Poke_block { addr = 108; words = [| 1; 2; 3 |] };
    Clear { addr = 120; bytes = 16 };
    Gc_roots [| 4; 8; 512 |];
    Mark { name = "parse"; kind = Phase_begin };
    Mark { name = "parse"; kind = Phase_end };
    Deleteregion { frame = 0; slot = 0; ok = true };
    Frame_pop;
    Free { id = 0 };
  ]

let write_sample path =
  let w = Trace.Format.create_writer ~path hdr in
  List.iter (Trace.Format.emit w) sample_records;
  Trace.Format.commit w ~summary:"synthetic summary"

let drain r =
  let rec go acc =
    match Trace.Format.next r with
    | Trace.Format.End -> List.rev acc
    | rec_ -> go (rec_ :: acc)
  in
  go []

let test_roundtrip () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let h = Trace.Format.header r in
      check_str "workload survives" hdr.workload h.Trace.Format.workload;
      check_str "variant survives" hdr.variant h.Trace.Format.variant;
      check_int "seed survives" hdr.seed h.Trace.Format.seed;
      check_str "summary survives" "synthetic summary" (Trace.Format.summary r);
      check_int "record count" (List.length sample_records)
        (Trace.Format.records r);
      check_int "object count" 5 (Trace.Format.objects r);
      check_int "region count" 1 (Trace.Format.regions r);
      check_bool "records round-trip structurally" true
        (drain r = sample_records);
      (* reset rewinds to the first record. *)
      Trace.Format.reset r;
      check_bool "reset replays identically" true (drain r = sample_records));
  Sys.remove path

(* The specialized hot-path emitters promise byte-equivalence with the
   generic [emit] — the reader cannot tell which was used. *)
let test_specialized_emitters_byte_equal () =
  let generic = tmp_path () and special = tmp_path () in
  let open Trace.Format in
  let lay = Regions.Cleanup.layout ~size_bytes:12 ~ptr_offsets:[ 0; 8 ] in
  let w = create_writer ~path:generic hdr in
  emit w (Malloc { size = 24 });
  emit w (Poke { addr = 40; v = 99 });
  emit w (Poke_byte { addr = 41; v = 3 });
  emit w (Poke_bytes { addr = 44; s = "abc" });
  emit w (Poke_block { addr = 48; words = [| 7; 8 |] });
  emit w (Clear { addr = 60; bytes = 8 });
  emit w (Gc_roots [| 1; 2 |]);
  emit w (Free { id = 0 });
  emit w Newregion;
  emit w (Ralloc { rid = 0; layout = lay });
  emit w (Rstralloc { rid = 0; size = 9 });
  emit w (Rarrayalloc { rid = 0; n = 4; layout = lay });
  emit w (Store_ptr { addr = Obj (1, 4); v = Reg 0 });
  emit w (Set_local { frame = 1; slot = 2; v = Raw (-5) });
  emit w (Set_local_ptr { frame = 1; slot = 3; v = Obj (2, 0) });
  emit w (Deleteregion { frame = 0; slot = 1; ok = true });
  commit w ~summary:"s";
  let w = create_writer ~path:special hdr in
  emit_malloc w ~size:24;
  emit_poke w ~addr:40 ~v:99;
  emit_poke_byte w ~addr:41 ~v:3;
  emit_poke_bytes w ~addr:44 "abc";
  emit_poke_block w ~addr:48 [| 7; 8 |];
  emit_clear w ~addr:60 ~bytes:8;
  emit_gc_roots w [| 1; 2 |];
  emit_free w ~id:0;
  emit_newregion w;
  emit_ralloc w ~rid:0 lay;
  emit_rstralloc w ~rid:0 ~size:9;
  emit_rarrayalloc w ~rid:0 ~n:4 lay;
  emit_store_ptr w ~addr:(Obj (1, 4)) ~v:(Reg 0);
  emit_set_local w ~frame:1 ~slot:2 ~v:(Raw (-5));
  emit_set_local_ptr w ~frame:1 ~slot:3 ~v:(Obj (2, 0));
  emit_deleteregion w ~frame:0 ~slot:1 ~ok:true;
  commit w ~summary:"s";
  check_str "identical bytes" (read_file generic) (read_file special);
  Sys.remove generic;
  Sys.remove special

(* [next_with_pokes] fuses plain-poke decoding into a callback; the
   stream it delivers (pokes via the callback, everything else as
   records) must match what [next] sees. *)
let test_next_with_pokes () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let pokes = ref [] in
      let poke ~addr ~v = pokes := (addr, v) :: !pokes in
      let rec go acc =
        match Trace.Format.next_with_pokes r ~poke with
        | Trace.Format.End -> List.rev acc
        | rec_ -> go (rec_ :: acc)
      in
      let rest = go [] in
      check_bool "pokes delivered through the callback, in order" true
        (List.rev !pokes = [ (100, 42); (104, -7) ]);
      let expected =
        List.filter
          (function Trace.Format.Poke _ -> false | _ -> true)
          sample_records
      in
      check_bool "non-poke records unchanged" true (rest = expected));
  Sys.remove path

(* [next_fused] additionally consumes [Store_ptr] records through
   int-only callbacks; the packed components it delivers must agree
   with the [value]s [next] decodes. *)
let test_next_fused () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let pack kind a b = (kind lsl 40) lxor (a lsl 20) lxor b in
      let pack_value =
        let open Trace.Format in
        function
        | Raw v -> pack 0 v 0
        | Obj (id, delta) -> pack 1 id delta
        | Reg rid -> pack 2 rid 0
      in
      let pokes = ref [] and stores = ref [] in
      let poke ~addr ~v = pokes := (addr, v) :: !pokes in
      let store ~addr ~v = stores := (addr, v) :: !stores in
      let rec go acc =
        match Trace.Format.next_fused r ~poke ~resolve:pack ~store with
        | Trace.Format.End -> List.rev acc
        | rec_ -> go (rec_ :: acc)
      in
      let rest = go [] in
      check_bool "pokes via the callback" true
        (List.rev !pokes = [ (100, 42); (104, -7) ]);
      let expected_stores =
        List.filter_map
          (function
            | Trace.Format.Store_ptr { addr; v } ->
                Some (pack_value addr, pack_value v)
            | _ -> None)
          sample_records
      in
      check_bool "store values delivered component-wise" true
        (List.rev !stores = expected_stores);
      let expected =
        List.filter
          (function
            | Trace.Format.Poke _ | Trace.Format.Store_ptr _ -> false
            | _ -> true)
          sample_records
      in
      check_bool "other records unchanged" true (rest = expected));
  Sys.remove path

let expect_error label = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: damaged trace accepted" label

let test_damage_rejected () =
  let path = tmp_path () in
  write_sample path;
  let good = read_file path in
  let damaged = tmp_path () in
  let open_damaged s =
    write_file damaged s;
    Trace.Format.open_file damaged
  in
  (* Truncation anywhere — mid-header, mid-body, mid-trailer — must be
     an open error, never a short read. *)
  expect_error "empty file" (open_damaged "");
  expect_error "header only"
    (open_damaged (String.sub good 0 (min 20 (String.length good))));
  expect_error "mid-body truncation"
    (open_damaged (String.sub good 0 (String.length good / 2)));
  expect_error "trailer cut"
    (open_damaged (String.sub good 0 (String.length good - 5)));
  expect_error "bad magic" (open_damaged ("XXXX" ^ String.sub good 4 (String.length good - 4)));
  (* A torn trailing record: framing intact (magic, trailer) but the
     last record's bytes are cut short.  The reader must raise
     [Corrupt] at that record, not fabricate one.  Setting the final
     body byte's continuation bit makes its varint run into the
     trailer. *)
  let b = Bytes.of_string good in
  let len = Bytes.length b in
  let end_off = Int64.to_int (Bytes.get_int64_le b (len - 12)) in
  Bytes.set b (end_off - 1) '\xFF';
  (match open_damaged (Bytes.to_string b) with
  | Error _ -> ()  (* also acceptable: rejected at open *)
  | Ok r -> (
      match
        let rec go () =
          match Trace.Format.next r with
          | Trace.Format.End -> ()
          | _ -> go ()
        in
        go ()
      with
      | () -> Alcotest.fail "torn trailing record read to End"
      | exception Trace.Format.Corrupt _ -> ()));
  Sys.remove path;
  Sys.remove damaged

(* ------------------------------------------------------------------ *)
(* Record -> replay count-equivalence.

   One malloc-family row (cfrac) and one region-only row (mudlle,
   whose traces are recorded under the emulated allocators) are
   verified here with the same cross-check [repro replay --verify]
   runs over the whole matrix: recording cells must match a plain run
   on every field, replayed cells on every allocator-side field. *)

let test_replay_equivalence workload () =
  let cells, diffs =
    Harness.Replaycheck.verify ~workload ~domains:2 Workloads.Workload.Quick
  in
  check_int "all report cells checked" 6 cells;
  match diffs with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "%d divergence(s); first: %a" (List.length diffs)
        Harness.Replaycheck.pp_diff d

(* ------------------------------------------------------------------ *)
(* ops traces: encode/decode through the binary format must be
   observationally identical to direct interpretation, for every
   allocator design — same stats, same mapped footprint, same final
   heap words. *)

let allocators =
  [
    ("lea", Alloc.Lea.create);
    ("bsd", Alloc.Bsd.create);
    ("sun", Alloc.Sun.create);
  ]

let heap_words mem =
  (* ops traces are small; the mapped extent is a few hundred kB. *)
  let bytes = Sim.Memory.os_bytes mem + 65536 in
  let rec go addr acc =
    if addr >= bytes then List.rev acc
    else
      go (addr + 4)
        (if Sim.Memory.is_mapped mem addr then
           (addr, Sim.Memory.peek mem addr) :: acc
         else acc)
  in
  go 0 []

let stats_tuple (a : Alloc.Allocator.t) =
  ( Alloc.Stats.allocs a.stats,
    Alloc.Stats.frees a.stats,
    Alloc.Stats.total_bytes a.stats,
    Alloc.Stats.max_live_bytes a.stats,
    Alloc.Stats.os_bytes a.stats )

let prop_ops_roundtrip =
  QCheck.Test.make ~count:30
    ~name:"ops trace: write_ops |> run_ops == interpret_ops (all allocators)"
    QCheck.(pair (0 -- 10_000) (1 -- 400))
    (fun (seed, len) ->
      let tr = Check.Trace.generate ~seed ~len in
      let path = tmp_path () in
      Trace.Record.write_ops ~out:path tr;
      let r =
        match Trace.Format.open_file path with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "open failed: %s" e
      in
      Sys.remove path;
      if Trace.Format.records r <> Array.length tr.Check.Trace.ops then
        QCheck.Test.fail_reportf "record count %d <> ops %d"
          (Trace.Format.records r)
          (Array.length tr.Check.Trace.ops);
      List.for_all
        (fun (name, create) ->
          let live_mem = Sim.Memory.create ~with_cache:false () in
          let live = create live_mem in
          Trace.Replay.interpret_ops tr live;
          let replayed_mem = Sim.Memory.create ~with_cache:false () in
          let replayed = create replayed_mem in
          Trace.Format.reset r;
          Trace.Replay.run_ops r replayed;
          live.Alloc.Allocator.check_heap ();
          replayed.Alloc.Allocator.check_heap ();
          if stats_tuple live <> stats_tuple replayed then
            QCheck.Test.fail_reportf "%s: allocator stats diverge (seed=%d)"
              name seed;
          if heap_words live_mem <> heap_words replayed_mem then
            QCheck.Test.fail_reportf "%s: final heap words diverge (seed=%d)"
              name seed;
          true)
        allocators)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "trace"
    [
      ( "format",
        [
          quick "write/read round-trip" test_roundtrip;
          quick "specialized emitters are byte-equivalent"
            test_specialized_emitters_byte_equal;
          quick "fused poke decoding" test_next_with_pokes;
          quick "fused store decoding" test_next_fused;
          quick "truncated and torn traces rejected" test_damage_rejected;
        ] );
      ( "replay",
        [
          quick "cfrac row count-equivalent" (test_replay_equivalence "cfrac");
          quick "mudlle row count-equivalent" (test_replay_equivalence "mudlle");
        ] );
      ("ops", [ QCheck_alcotest.to_alcotest prop_ops_roundtrip ]);
    ]
