(* The trace record/replay engine: the binary format round-trips
   byte-for-byte, damage (truncation, torn trailing records) is
   rejected rather than misread, a recorded workload replays to the
   same allocator-side counts as full execution, and the ops-trace
   encode/decode round trip is observationally identical to direct
   interpretation — for every allocator. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tmp_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "trace-test-%d-%d.trace" (Unix.getpid ()) !n)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let hdr =
  {
    Trace.Format.workload = "synthetic";
    variant = "malloc";
    mode = "lea";
    size = "quick";
    seed = 42;
    build_id = "test-build";
  }

(* A record stream exercising every constructor a workload trace can
   contain, including a layout that appears twice (the reader interns
   layouts by their encoded bytes — both sightings must decode to the
   same value) and one that appears once. *)
let sample_records =
  let open Trace.Format in
  let lay_a = Regions.Cleanup.layout ~size_bytes:12 ~ptr_offsets:[ 0; 8 ] in
  let lay_b = Regions.Cleanup.layout ~size_bytes:40 ~ptr_offsets:[] in
  [
    Malloc { size = 40 };
    Newregion;
    Ralloc { rid = 0; layout = lay_a };
    Rstralloc { rid = 0; size = 17 };
    Rarrayalloc { rid = 0; n = 3; layout = lay_b };
    Ralloc { rid = 0; layout = lay_a };
    Frame_push { nslots = 2; ptr_slots = [ 0; 1 ] };
    Set_local { frame = 0; slot = 0; v = Raw 5 };
    Set_local_ptr { frame = 0; slot = 1; v = Obj (0, 4) };
    Store_ptr { addr = Obj (0, 0); v = Reg 0 };
    Poke { addr = 100; v = 42 };
    Poke { addr = 104; v = -7 };
    Poke_byte { addr = 101; v = 200 };
    Poke_bytes { addr = 104; s = "hi\000there" };
    Poke_block { addr = 108; words = [| 1; 2; 3 |] };
    Clear { addr = 120; bytes = 16 };
    Gc_roots [| 4; 8; 512 |];
    Mark { name = "parse"; kind = Phase_begin };
    Mark { name = "parse"; kind = Phase_end };
    Deleteregion { rid = 0; frame = 0; slot = 0; ok = true };
    Frame_pop;
    Free { id = 0 };
  ]

let write_sample path =
  let w = Trace.Format.create_writer ~path hdr in
  List.iter (Trace.Format.emit w) sample_records;
  Trace.Format.commit w ~summary:"synthetic summary"

let drain r =
  let rec go acc =
    match Trace.Format.next r with
    | Trace.Format.End -> List.rev acc
    | rec_ -> go (rec_ :: acc)
  in
  go []

let test_roundtrip () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let h = Trace.Format.header r in
      check_str "workload survives" hdr.workload h.Trace.Format.workload;
      check_str "variant survives" hdr.variant h.Trace.Format.variant;
      check_int "seed survives" hdr.seed h.Trace.Format.seed;
      check_str "summary survives" "synthetic summary" (Trace.Format.summary r);
      check_int "record count" (List.length sample_records)
        (Trace.Format.records r);
      check_int "object count" 5 (Trace.Format.objects r);
      check_int "region count" 1 (Trace.Format.regions r);
      check_bool "records round-trip structurally" true
        (drain r = sample_records);
      (* reset rewinds to the first record. *)
      Trace.Format.reset r;
      check_bool "reset replays identically" true (drain r = sample_records);
      Trace.Format.close r);
  Sys.remove path

(* The specialized hot-path emitters promise byte-equivalence with the
   generic [emit] — the reader cannot tell which was used. *)
let test_specialized_emitters_byte_equal () =
  let generic = tmp_path () and special = tmp_path () in
  let open Trace.Format in
  let lay = Regions.Cleanup.layout ~size_bytes:12 ~ptr_offsets:[ 0; 8 ] in
  let w = create_writer ~path:generic hdr in
  emit w (Malloc { size = 24 });
  emit w (Poke { addr = 40; v = 99 });
  emit w (Poke_byte { addr = 41; v = 3 });
  emit w (Poke_bytes { addr = 44; s = "abc" });
  emit w (Poke_block { addr = 48; words = [| 7; 8 |] });
  emit w (Clear { addr = 60; bytes = 8 });
  emit w (Gc_roots [| 1; 2 |]);
  emit w (Free { id = 0 });
  emit w Newregion;
  emit w (Ralloc { rid = 0; layout = lay });
  emit w (Rstralloc { rid = 0; size = 9 });
  emit w (Rarrayalloc { rid = 0; n = 4; layout = lay });
  emit w (Store_ptr { addr = Obj (1, 4); v = Reg 0 });
  emit w (Set_local { frame = 1; slot = 2; v = Raw (-5) });
  emit w (Set_local_ptr { frame = 1; slot = 3; v = Obj (2, 0) });
  emit w (Deleteregion { rid = 0; frame = 0; slot = 1; ok = true });
  commit w ~summary:"s";
  let w = create_writer ~path:special hdr in
  emit_malloc w ~size:24;
  emit_poke w ~addr:40 ~v:99;
  emit_poke_byte w ~addr:41 ~v:3;
  emit_poke_bytes w ~addr:44 "abc";
  emit_poke_block w ~addr:48 [| 7; 8 |];
  emit_clear w ~addr:60 ~bytes:8;
  emit_gc_roots w [| 1; 2 |];
  emit_free w ~id:0;
  emit_newregion w;
  emit_ralloc w ~rid:0 lay;
  emit_rstralloc w ~rid:0 ~size:9;
  emit_rarrayalloc w ~rid:0 ~n:4 lay;
  emit_store_ptr w ~addr:(Obj (1, 4)) ~v:(Reg 0);
  emit_set_local w ~frame:1 ~slot:2 ~v:(Raw (-5));
  emit_set_local_ptr w ~frame:1 ~slot:3 ~v:(Obj (2, 0));
  emit_deleteregion w ~rid:0 ~frame:0 ~slot:1 ~ok:true;
  commit w ~summary:"s";
  check_str "identical bytes" (read_file generic) (read_file special);
  Sys.remove generic;
  Sys.remove special

(* [next_with_pokes] fuses plain-poke decoding into a callback; the
   stream it delivers (pokes via the callback, everything else as
   records) must match what [next] sees. *)
let test_next_with_pokes () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let pokes = ref [] in
      let poke ~addr ~v = pokes := (addr, v) :: !pokes in
      let rec go acc =
        match Trace.Format.next_with_pokes r ~poke with
        | Trace.Format.End -> List.rev acc
        | rec_ -> go (rec_ :: acc)
      in
      let rest = go [] in
      check_bool "pokes delivered through the callback, in order" true
        (List.rev !pokes = [ (100, 42); (104, -7) ]);
      let expected =
        List.filter
          (function Trace.Format.Poke _ -> false | _ -> true)
          sample_records
      in
      check_bool "non-poke records unchanged" true (rest = expected);
      Trace.Format.close r);
  Sys.remove path

(* [next_fused] additionally consumes [Store_ptr] records through
   int-only callbacks; the packed components it delivers must agree
   with the [value]s [next] decodes. *)
let test_next_fused () =
  let path = tmp_path () in
  write_sample path;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let pack kind a b = (kind lsl 40) lxor (a lsl 20) lxor b in
      let pack_value =
        let open Trace.Format in
        function
        | Raw v -> pack 0 v 0
        | Obj (id, delta) -> pack 1 id delta
        | Reg rid -> pack 2 rid 0
      in
      let pokes = ref [] and stores = ref [] in
      let poke ~addr ~v = pokes := (addr, v) :: !pokes in
      let store ~addr ~v = stores := (addr, v) :: !stores in
      let rec go acc =
        match Trace.Format.next_fused r ~poke ~resolve:pack ~store with
        | Trace.Format.End -> List.rev acc
        | rec_ -> go (rec_ :: acc)
      in
      let rest = go [] in
      check_bool "pokes via the callback" true
        (List.rev !pokes = [ (100, 42); (104, -7) ]);
      let expected_stores =
        List.filter_map
          (function
            | Trace.Format.Store_ptr { addr; v } ->
                Some (pack_value addr, pack_value v)
            | _ -> None)
          sample_records
      in
      check_bool "store values delivered component-wise" true
        (List.rev !stores = expected_stores);
      let expected =
        List.filter
          (function
            | Trace.Format.Poke _ | Trace.Format.Store_ptr _ -> false
            | _ -> true)
          sample_records
      in
      check_bool "other records unchanged" true (rest = expected);
      Trace.Format.close r);
  Sys.remove path

let expect_error label = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: damaged trace accepted" label

let test_damage_rejected () =
  let path = tmp_path () in
  write_sample path;
  let good = read_file path in
  let damaged = tmp_path () in
  let open_damaged s =
    write_file damaged s;
    Trace.Format.open_file damaged
  in
  (* Truncation anywhere — mid-header, mid-body, mid-trailer — must be
     an open error, never a short read. *)
  expect_error "empty file" (open_damaged "");
  expect_error "header only"
    (open_damaged (String.sub good 0 (min 20 (String.length good))));
  expect_error "mid-body truncation"
    (open_damaged (String.sub good 0 (String.length good / 2)));
  expect_error "trailer cut"
    (open_damaged (String.sub good 0 (String.length good - 5)));
  expect_error "bad magic" (open_damaged ("XXXX" ^ String.sub good 4 (String.length good - 4)));
  (* A torn trailing record: framing intact (magic, trailer) but the
     last record's bytes are cut short.  The reader must raise
     [Corrupt] at that record, not fabricate one.  Setting the final
     body byte's continuation bit makes its varint run into the
     trailer. *)
  let b = Bytes.of_string good in
  let len = Bytes.length b in
  let end_off = Int64.to_int (Bytes.get_int64_le b (len - 12)) in
  Bytes.set b (end_off - 1) '\xFF';
  (match open_damaged (Bytes.to_string b) with
  | Error _ -> ()  (* also acceptable: rejected at open *)
  | Ok r -> (
      match
        let rec go () =
          match Trace.Format.next r with
          | Trace.Format.End -> ()
          | _ -> go ()
        in
        go ()
      with
      | () -> Alcotest.fail "torn trailing record read to End"
      | exception Trace.Format.Corrupt _ -> Trace.Format.close r));
  Sys.remove path;
  Sys.remove damaged

(* ------------------------------------------------------------------ *)
(* Streaming reader == in-memory reader, on arbitrary traces and
   chunk sizes down to a single byte.  The streaming reader's refill
   window cuts records, strings and varints at every possible byte
   boundary; the decoded stream must not care. *)

(* A deterministic pseudo-random record list covering every
   constructor, with field values spread across the varint size
   classes (one-byte, multi-byte, negative). *)
let random_records seed len =
  let open Trace.Format in
  let s = ref (((seed * 2654435761) land 0x3FFFFFFF) + 1) in
  let rnd m =
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod m
  in
  let lay () =
    Regions.Cleanup.layout
      ~size_bytes:(4 + (4 * rnd 8))
      ~ptr_offsets:(if rnd 2 = 0 then [] else [ 0 ])
  in
  let value () =
    match rnd 3 with
    | 0 -> Raw (rnd 100_000 - 50_000)
    | 1 -> Obj (rnd 64, 4 * rnd 16)
    | _ -> Reg (rnd 8)
  in
  List.init len (fun _ ->
      match rnd 18 with
      | 0 -> Malloc { size = 1 + rnd 5000 }
      | 1 -> Free { id = rnd 64 }
      | 2 -> Poke { addr = 4 * rnd 100_000; v = rnd 100_000 - 50_000 }
      | 3 -> Poke_byte { addr = rnd 100_000; v = rnd 256 }
      | 4 ->
          Poke_bytes
            {
              addr = rnd 100_000;
              s = String.init (rnd 12) (fun i -> Char.chr (((i * 37) + rnd 256) land 0xFF));
            }
      | 5 -> Poke_block { addr = 4 * rnd 100_000; words = Array.init (rnd 6) (fun i -> i - 2) }
      | 6 -> Clear { addr = 4 * rnd 100_000; bytes = 4 * rnd 32 }
      | 7 -> Gc_roots (Array.init (rnd 5) (fun i -> 4 * (i + rnd 1000)))
      | 8 -> Newregion
      | 9 -> Ralloc { rid = rnd 8; layout = lay () }
      | 10 -> Rstralloc { rid = rnd 8; size = 1 + rnd 300 }
      | 11 -> Rarrayalloc { rid = rnd 8; n = 1 + rnd 5; layout = lay () }
      | 12 -> Store_ptr { addr = value (); v = value () }
      | 13 -> Frame_push { nslots = 1 + rnd 4; ptr_slots = [ 0 ] }
      | 14 -> Set_local { frame = rnd 4; slot = rnd 4; v = value () }
      | 15 -> Set_local_ptr { frame = rnd 4; slot = rnd 4; v = value () }
      | 16 -> Deleteregion { rid = rnd 8; frame = rnd 4; slot = rnd 4; ok = rnd 2 = 0 }
      | _ -> Mark { name = "m"; kind = (if rnd 2 = 0 then Phase_begin else Phase_end) })

(* Fully decode a reader through the fused hot path, capturing every
   callback delivery, so two readers can be compared on the exact
   stream replay consumes. *)
let fused_stream r =
  let pack kind a b = (kind lsl 40) lxor (a lsl 20) lxor b in
  let pokes = ref [] and stores = ref [] in
  let poke ~addr ~v = pokes := (addr, v) :: !pokes in
  let store ~addr ~v = stores := (addr, v) :: !stores in
  let rec go acc =
    match Trace.Format.next_fused r ~poke ~resolve:pack ~store with
    | Trace.Format.End -> List.rev acc
    | rec_ -> go (rec_ :: acc)
  in
  let rest = go [] in
  (rest, List.rev !pokes, List.rev !stores)

let prop_streaming_equals_in_memory =
  QCheck.Test.make ~count:40
    ~name:"streaming reader == in-memory reader (any records, any chunk)"
    QCheck.(triple (0 -- 10_000) (0 -- 300) (1 -- 64))
    (fun (seed, len, chunk) ->
      let records = random_records seed len in
      let path = tmp_path () in
      let w = Trace.Format.create_writer ~path hdr in
      List.iter (Trace.Format.emit w) records;
      Trace.Format.commit w ~summary:"prop";
      let streamed =
        match Trace.Format.open_file ~chunk path with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "streaming open failed: %s" e
      in
      let in_mem =
        match Trace.Format.open_in_memory path with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "in-memory open failed: %s" e
      in
      Sys.remove path;
      let finish () = Trace.Format.close streamed in
      if Trace.Format.header streamed <> Trace.Format.header in_mem then
        QCheck.Test.fail_reportf "headers differ (seed=%d)" seed;
      if Trace.Format.records streamed <> Trace.Format.records in_mem then
        QCheck.Test.fail_reportf "record counts differ (seed=%d)" seed;
      if Trace.Format.summary streamed <> Trace.Format.summary in_mem then
        QCheck.Test.fail_reportf "summaries differ (seed=%d)" seed;
      let a = drain streamed and b = drain in_mem in
      if a <> b then
        QCheck.Test.fail_reportf "record streams differ (seed=%d chunk=%d)"
          seed chunk;
      if b <> records then
        QCheck.Test.fail_reportf "decoded stream <> written records (seed=%d)"
          seed;
      Trace.Format.reset streamed;
      Trace.Format.reset in_mem;
      if fused_stream streamed <> fused_stream in_mem then
        QCheck.Test.fail_reportf "fused streams differ (seed=%d chunk=%d)" seed
          chunk;
      finish ();
      true)

(* Single-bit corruption anywhere in the file: the streaming reader
   must answer with an open error, a [Corrupt] while reading, or a
   clean bounded stream — never a hang or an unbounded allocation (a
   flipped element count is checked against the remaining body before
   any buffer is sized, format.ml's [count]). *)
let prop_bitflip_bounded =
  let base =
    lazy
      (let path = tmp_path () in
       let w = Trace.Format.create_writer ~path hdr in
       List.iter (Trace.Format.emit w) (random_records 7 200);
       Trace.Format.commit w ~summary:"bitflip base";
       let data = read_file path in
       Sys.remove path;
       data)
  in
  QCheck.Test.make ~count:150
    ~name:"streaming reader: single bit-flips error out, never hang"
    QCheck.(pair (0 -- 1_000_000) (1 -- 97))
    (fun (flip, chunk) ->
      let good = Lazy.force base in
      let b = Bytes.of_string good in
      let bit = flip mod (8 * Bytes.length b) in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      let path = tmp_path () in
      write_file path (Bytes.to_string b);
      let verdict =
        match Trace.Format.open_file ~chunk path with
        | Error _ -> true (* rejected at open *)
        | Ok r ->
            let bound = (8 * Bytes.length b) + 16 in
            let rec go n =
              if n > bound then false (* more records than body bytes: loop *)
              else
                match Trace.Format.next r with
                | Trace.Format.End -> true
                | _ -> go (n + 1)
            in
            let ok = try go 0 with Trace.Format.Corrupt _ -> true in
            Trace.Format.close r;
            ok
      in
      Sys.remove path;
      verdict)

(* ------------------------------------------------------------------ *)
(* The synthetic generator (Trace.Gen): same spec, same bytes — on
   every host and build — plus distribution sanity on what it wrote,
   and replayability of its output on every column family. *)

let gen_params spec =
  match Trace.Gen.of_string spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad gen spec %S: %s" spec e

let test_gen_deterministic () =
  let p = gen_params "n=20000,size=heavy:16:65536,life=exp:400,stores=2,seed=9" in
  let a = tmp_path () and b = tmp_path () in
  Trace.Gen.generate ~out:a p;
  Trace.Gen.generate ~out:b p;
  check_str "same spec, byte-identical traces" (read_file a) (read_file b);
  let p' = { p with Trace.Gen.seed = 10 } in
  Trace.Gen.generate ~out:b p';
  check_bool "different seed, different bytes" false (read_file a = read_file b);
  Sys.remove a;
  Sys.remove b

(* Distribution sanity: every size respects the spec's bounds and the
   uniform mean lands near the middle; exponential lifetimes actually
   interleave deaths with allocations rather than batching them all at
   the end. *)
let test_gen_histogram () =
  let n = 20_000 in
  let p = gen_params (Printf.sprintf "n=%d,size=uniform:16:64,life=exp:300" n) in
  let path = tmp_path () in
  Trace.Gen.generate ~out:path p;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      check_int "trailer object count" n (Trace.Format.objects r);
      check_bool "recycled-ids flag set" true (Trace.Format.recycled r);
      check_bool "id table bounded by live set, not trace length" true
        (Trace.Format.obj_slots r < n / 4);
      let sizes = ref [] and mallocs = ref 0 and frees_before_last = ref 0 in
      let rec go () =
        match Trace.Format.next r with
        | Trace.Format.End -> ()
        | Trace.Format.Malloc { size } ->
            incr mallocs;
            sizes := size :: !sizes;
            go ()
        | Trace.Format.Free _ ->
            if !mallocs < n then incr frees_before_last;
            go ()
        | _ -> go ()
      in
      go ();
      Trace.Format.close r;
      check_int "one malloc per object" n !mallocs;
      List.iter
        (fun s ->
          if s < 16 || s > 64 then
            Alcotest.failf "size %d outside uniform:16:64" s)
        !sizes;
      let mean =
        float_of_int (List.fold_left ( + ) 0 !sizes) /. float_of_int n
      in
      check_bool "uniform mean near 40" true (mean > 36. && mean < 44.);
      check_bool "exponential deaths interleave with allocation" true
        (!frees_before_last > n / 2));
  Sys.remove path

(* Timeline profiling during replay: deterministic (same trace, same
   column => byte-identical CSV), bounded (at most [capacity] samples
   however long the trace), and pure observation — the replayed
   simulated counts are byte-identical with and without a timeline. *)
let test_timeline_replay_deterministic () =
  let p = gen_params "n=30000,variant=malloc,size=table2,life=lifo:256" in
  let path = tmp_path () in
  Trace.Gen.generate ~out:path p;
  let replay ?timeline mode =
    match Trace.Format.open_file path with
    | Error e -> Alcotest.failf "open failed: %s" e
    | Ok r ->
        Fun.protect
          ~finally:(fun () -> Trace.Format.close r)
          (fun () -> Trace.Replay.run ?timeline r mode)
  in
  List.iter
    (fun mode ->
      let capacity = 64 in
      let run () =
        let tl = Obs.Timeline.create ~capacity () in
        let r = replay ~timeline:tl mode in
        (Obs.Timeline.to_csv tl, Format.asprintf "%a" Workloads.Results.pp r)
      in
      let csv1, with_tl = run () in
      let csv2, _ = run () in
      check_str "same trace and column, same CSV" csv1 csv2;
      check_bool "bounded samples" true
        (List.length (String.split_on_char '\n' (String.trim csv1)) - 1
        <= capacity);
      let bare = Format.asprintf "%a" Workloads.Results.pp (replay mode) in
      check_str "profiling is pure observation" bare with_tl)
    [
      Workloads.Api.Direct Workloads.Api.Lea;
      Workloads.Api.Direct Workloads.Api.Gc;
    ];
  Sys.remove path

(* Fragmentation accounting inside the sampled rows: live <= held under
   the malloc columns (usable size can only round up) and the external
   component is exactly os - held. *)
let test_timeline_frag_invariants () =
  let p = gen_params "n=30000,variant=malloc,size=table2,life=lifo:256" in
  let path = tmp_path () in
  Trace.Gen.generate ~out:path p;
  (match Trace.Format.open_file path with
  | Error e -> Alcotest.failf "open failed: %s" e
  | Ok r ->
      let tl = Obs.Timeline.create ~capacity:64 () in
      let (_ : Workloads.Results.t) =
        Fun.protect
          ~finally:(fun () -> Trace.Format.close r)
          (fun () ->
            Trace.Replay.run ~timeline:tl r
              (Workloads.Api.Direct Workloads.Api.Lea))
      in
      check_bool "sampled something" true (Obs.Timeline.length tl > 0);
      Obs.Timeline.iter tl
        (fun ~events:_ ~live_allocs ~live_bytes ~held_bytes ~os_bytes ->
          check_bool "live allocs non-negative" true (live_allocs >= 0);
          check_bool "held covers live" true (held_bytes >= live_bytes);
          check_bool "os covers held" true (os_bytes >= held_bytes)));
  Sys.remove path

let test_gen_replays_on_columns () =
  let run spec modes =
    let p = gen_params spec in
    let path = tmp_path () in
    Trace.Gen.generate ~out:path p;
    List.iter
      (fun mode ->
        match Trace.Format.open_file path with
        | Error e -> Alcotest.failf "open failed: %s" e
        | Ok r ->
            let res = Trace.Replay.run r mode in
            Trace.Format.close r;
            check_int
              (Printf.sprintf "%s: every allocation replayed" spec)
              p.Trace.Gen.objects res.Workloads.Results.req_allocs)
      modes;
    Sys.remove path
  in
  run "n=20000,variant=malloc,size=table2,life=lifo:64,stores=1"
    [
      Workloads.Api.Direct Workloads.Api.Sun;
      Workloads.Api.Direct Workloads.Api.Bsd;
      Workloads.Api.Direct Workloads.Api.Lea;
      Workloads.Api.Direct Workloads.Api.Gc;
    ];
  run "n=20000,variant=region,size=table2,life=long:5:200,stores=1"
    [
      Workloads.Api.Region { safe = true };
      Workloads.Api.Region { safe = false };
    ]

(* ------------------------------------------------------------------ *)
(* Record -> replay count-equivalence.

   One malloc-family row (cfrac) and one region-only row (mudlle,
   whose traces are recorded under the emulated allocators) are
   verified here with the same cross-check [repro replay --verify]
   runs over the whole matrix: recording cells must match a plain run
   on every field, replayed cells on every allocator-side field. *)

let test_replay_equivalence workload () =
  let cells, diffs =
    Harness.Replaycheck.verify ~workload ~domains:2 Workloads.Workload.Quick
  in
  check_int "all report cells checked" 6 cells;
  match diffs with
  | [] -> ()
  | d :: _ ->
      Alcotest.failf "%d divergence(s); first: %a" (List.length diffs)
        Harness.Replaycheck.pp_diff d

(* ------------------------------------------------------------------ *)
(* ops traces: encode/decode through the binary format must be
   observationally identical to direct interpretation, for every
   allocator design — same stats, same mapped footprint, same final
   heap words. *)

let allocators =
  [
    ("lea", Alloc.Lea.create);
    ("bsd", Alloc.Bsd.create);
    ("sun", Alloc.Sun.create);
  ]

let heap_words mem =
  (* ops traces are small; the mapped extent is a few hundred kB. *)
  let bytes = Sim.Memory.os_bytes mem + 65536 in
  let rec go addr acc =
    if addr >= bytes then List.rev acc
    else
      go (addr + 4)
        (if Sim.Memory.is_mapped mem addr then
           (addr, Sim.Memory.peek mem addr) :: acc
         else acc)
  in
  go 0 []

let stats_tuple (a : Alloc.Allocator.t) =
  ( Alloc.Stats.allocs a.stats,
    Alloc.Stats.frees a.stats,
    Alloc.Stats.total_bytes a.stats,
    Alloc.Stats.max_live_bytes a.stats,
    Alloc.Stats.os_bytes a.stats )

let prop_ops_roundtrip =
  QCheck.Test.make ~count:30
    ~name:"ops trace: write_ops |> run_ops == interpret_ops (all allocators)"
    QCheck.(pair (0 -- 10_000) (1 -- 400))
    (fun (seed, len) ->
      let tr = Check.Trace.generate ~seed ~len in
      let path = tmp_path () in
      Trace.Record.write_ops ~out:path tr;
      let r =
        match Trace.Format.open_file path with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "open failed: %s" e
      in
      Sys.remove path;
      if Trace.Format.records r <> Array.length tr.Check.Trace.ops then
        QCheck.Test.fail_reportf "record count %d <> ops %d"
          (Trace.Format.records r)
          (Array.length tr.Check.Trace.ops);
      List.for_all
        (fun (name, create) ->
          let live_mem = Sim.Memory.create ~with_cache:false () in
          let live = create live_mem in
          Trace.Replay.interpret_ops tr live;
          let replayed_mem = Sim.Memory.create ~with_cache:false () in
          let replayed = create replayed_mem in
          Trace.Format.reset r;
          Trace.Replay.run_ops r replayed;
          live.Alloc.Allocator.check_heap ();
          replayed.Alloc.Allocator.check_heap ();
          if stats_tuple live <> stats_tuple replayed then
            QCheck.Test.fail_reportf "%s: allocator stats diverge (seed=%d)"
              name seed;
          if heap_words live_mem <> heap_words replayed_mem then
            QCheck.Test.fail_reportf "%s: final heap words diverge (seed=%d)"
              name seed;
          true)
        allocators
      |> fun ok ->
      Trace.Format.close r;
      ok)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "trace"
    [
      ( "format",
        [
          quick "write/read round-trip" test_roundtrip;
          quick "specialized emitters are byte-equivalent"
            test_specialized_emitters_byte_equal;
          quick "fused poke decoding" test_next_with_pokes;
          quick "fused store decoding" test_next_fused;
          quick "truncated and torn traces rejected" test_damage_rejected;
          QCheck_alcotest.to_alcotest prop_streaming_equals_in_memory;
          QCheck_alcotest.to_alcotest prop_bitflip_bounded;
        ] );
      ( "gen",
        [
          quick "same spec, byte-identical output" test_gen_deterministic;
          quick "distribution sanity" test_gen_histogram;
          quick "generated traces replay on every column family"
            test_gen_replays_on_columns;
        ] );
      ( "timeline",
        [
          quick "deterministic, bounded, pure observation"
            test_timeline_replay_deterministic;
          quick "fragmentation accounting invariants"
            test_timeline_frag_invariants;
        ] );
      ( "replay",
        [
          quick "cfrac row count-equivalent" (test_replay_equivalence "cfrac");
          quick "mudlle row count-equivalent" (test_replay_equivalence "mudlle");
        ] );
      ("ops", [ QCheck_alcotest.to_alcotest prop_ops_roundtrip ]);
    ]
