(* Tests for the cell daemon: wire-protocol framing and codecs, live
   daemon behaviour over a real Unix socket (cold/warm serving,
   malformed-frame survival, deterministic admission control, deadline
   expiry, journal recovery after kill -9), and the chaos property:
   kill the daemon at a random instant mid-load, restart it, and the
   served cell set must be byte-identical to an uninterrupted run with
   zero corrupt cache entries. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module P = Serve.Protocol

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_frame_roundtrip () =
  let payloads = [ "x"; "{\"id\":1}"; String.make 4096 'q' ] in
  let stream = String.concat "" (List.map P.encode_frame payloads) in
  (* worst-case delivery: one byte per feed *)
  let d = P.decoder () in
  let out = ref [] in
  String.iter
    (fun c ->
      P.feed d (String.make 1 c);
      match P.next d with
      | Ok (Some p) -> out := p :: !out
      | Ok None -> ()
      | Error e -> Alcotest.failf "spurious decode error: %s" e)
    stream;
  Alcotest.(check (list string))
    "byte-at-a-time reassembly" payloads (List.rev !out);
  check_int "nothing left buffered" 0 (P.buffered d)

let test_frame_violations () =
  let reject name bytes =
    let d = P.decoder () in
    P.feed d bytes;
    match P.next d with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ " should be a protocol violation")
  in
  reject "zero-length frame" "\x00\x00\x00\x00";
  reject "oversize declared length" "\xff\xff\xff\xffjunk";
  (* an incomplete header is not a violation, just more-bytes-needed *)
  let d = P.decoder () in
  P.feed d "\x00\x00";
  (match P.next d with
  | Ok None -> ()
  | Ok (Some _) | Error _ -> Alcotest.fail "short header must be Ok None");
  (match P.encode_frame "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoding an empty frame should be rejected");
  match P.encode_frame (String.make (P.max_frame + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encoding an oversize frame should be rejected"

let test_request_roundtrip () =
  let r =
    P.request ~id:7 ~seed:3 ~plan:"budget=8,ramp=0:0.01" ~deadline_s:1.5
      ~workload:"cfrac" ~mode:"region" ~size:"full" ()
  in
  (match P.decode_request (P.encode_request r) with
  | Error e -> Alcotest.failf "decode: %s" e
  | Ok r' ->
      check_bool "round-trips" true (r = r');
      check_str "dedupe key carries the whole identity"
        "cfrac|region|full|3|budget=8,ramp=0:0.01" (P.key_of_request r));
  (* deadline is optional *)
  let bare = P.request ~workload:"w" ~mode:"m" ~size:"quick" () in
  match P.decode_request (P.encode_request bare) with
  | Ok r' -> check_bool "no deadline survives" true (r'.P.deadline_s = None)
  | Error e -> Alcotest.failf "decode bare: %s" e

let test_response_roundtrip () =
  let cell = Results.Json.Obj [ ("k", Results.Json.Int 1) ] in
  let cases =
    [
      P.Cell { id = 1; warm = true; cell };
      P.Cell { id = 2; warm = false; cell };
      P.Overloaded { id = 3 };
      P.Bad_request { id = 4; reason = "unknown workload \"zork\"" };
      P.Failed { id = 5; reason = "watchdog: cell exceeded 0.1s" };
      P.Deadline { id = 6 };
    ]
  in
  List.iteri
    (fun i r ->
      match P.decode_response (P.encode_response r) with
      | Error e -> Alcotest.failf "case %d: %s" i e
      | Ok r' ->
          check_int "id echoes" (P.response_id r) (P.response_id r');
          check_str "re-encode is byte-identical" (P.encode_response r)
            (P.encode_response r'))
    cases;
  match P.decode_response "{\"status\":\"martian\",\"id\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown status should not decode"

(* ------------------------------------------------------------------ *)
(* Live daemon *)

let repro_exe = "../bin/main.exe"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "repro-serve-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let spawn_daemon ?(extra = []) ~socket ~dir () =
  let args =
    [ repro_exe; "serve"; "--socket"; socket; "--cache-dir"; dir ] @ extra
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process repro_exe (Array.of_list args) Unix.stdin Unix.stdout
      null
  in
  Unix.close null;
  pid

let connect socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.;
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error e

(* A stale socket file survives kill -9, so readiness is
   connectability, never mere existence. *)
let wait_ready socket =
  let rec go n =
    if n > 400 then Alcotest.fail "daemon never became ready";
    match connect socket with
    | Ok fd -> Unix.close fd
    | Error _ ->
        Unix.sleepf 0.025;
        go (n + 1)
  in
  go 0

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> n
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> 128 + s
  | exception Unix.Unix_error _ -> -1

let with_daemon ?extra f =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let pid = spawn_daemon ?extra ~socket ~dir () in
  wait_ready socket;
  let exit_code = ref None in
  Fun.protect
    ~finally:(fun () ->
      match !exit_code with Some _ -> () | None -> ignore (stop_daemon pid))
    (fun () ->
      let r = f ~socket ~dir in
      let code = stop_daemon pid in
      exit_code := Some code;
      check_int "daemon drained cleanly on SIGTERM" 0 code;
      r)

let rpc fd req =
  P.write_frame fd (P.encode_request req);
  match P.read_frame fd with
  | Error e -> Alcotest.failf "read_frame: %s" e
  | Ok payload -> (
      match P.decode_response payload with
      | Ok r -> r
      | Error e -> Alcotest.failf "decode_response: %s" e)

let cfrac_req ?id ?seed ?plan ?deadline_s ?(mode = "sun") ?(size = "quick") ()
    =
  P.request ?id ?seed ?plan ?deadline_s ~workload:"cfrac" ~mode ~size ()

let test_cold_then_warm () =
  with_daemon (fun ~socket ~dir:_ ->
      match connect socket with
      | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          let cell_bytes = function
            | P.Cell { cell; _ } -> Results.Json.to_string ~indent:false cell
            | r ->
                Alcotest.failf "expected a cell, got id %d non-cell"
                  (P.response_id r)
          in
          (match rpc fd (cfrac_req ~id:1 ()) with
          | P.Cell { id; warm; _ } as r ->
              check_int "id echoed" 1 id;
              check_bool "first serving is cold" false warm;
              let first = cell_bytes r in
              (* same identity again, same connection: warm and
                 byte-identical *)
              (match rpc fd (cfrac_req ~id:2 ()) with
              | P.Cell { id; warm; _ } as r2 ->
                  check_int "second id echoed" 2 id;
                  check_bool "second serving is warm" true warm;
                  check_str "warm bytes identical" first (cell_bytes r2)
              | _ -> Alcotest.fail "second request did not yield a cell")
          | _ -> Alcotest.fail "first request did not yield a cell");
          (* a different identity on the same connection is cold *)
          match rpc fd (cfrac_req ~id:3 ~seed:9 ()) with
          | P.Cell { warm; _ } -> check_bool "new seed is cold" false warm
          | _ -> Alcotest.fail "third request did not yield a cell")

let test_malformed_frames_survive () =
  with_daemon (fun ~socket ~dir:_ ->
      (* 1: a well-framed but non-JSON payload — Bad_request, and the
         connection stays usable *)
      (match connect socket with
      | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          P.write_frame fd "this is not json";
          (match P.read_frame fd with
          | Ok payload -> (
              match P.decode_response payload with
              | Ok (P.Bad_request _) -> ()
              | Ok _ -> Alcotest.fail "garbage JSON should be Bad_request"
              | Error e -> Alcotest.failf "decode: %s" e)
          | Error e -> Alcotest.failf "no reply to garbage JSON: %s" e);
          match rpc fd (cfrac_req ~id:5 ()) with
          | P.Cell _ -> ()
          | _ -> Alcotest.fail "connection unusable after garbage JSON");
      (* 2: an unframeable length prefix — error frame, then close *)
      (match connect socket with
      | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          ignore (Unix.write_substring fd "\xff\xff\xff\xffgarbage" 0 11);
          (match P.read_frame fd with
          | Ok payload -> (
              match P.decode_response payload with
              | Ok (P.Bad_request _) -> ()
              | _ -> Alcotest.fail "violation should answer Bad_request")
          | Error _ ->
              (* a racing close is acceptable; death is not, checked
                 below *)
              ()));
      (* 3: the daemon is still alive and serving *)
      match connect socket with
      | Error e ->
          Alcotest.failf "daemon died after violations: %s"
            (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          (match rpc fd (cfrac_req ~id:6 ()) with
          | P.Cell _ -> ()
          | _ -> Alcotest.fail "daemon unusable after violations");
          (* unknown workload/mode are per-request errors *)
          (match
             rpc fd (P.request ~id:7 ~workload:"zork" ~mode:"sun" ~size:"quick" ())
           with
          | P.Bad_request { id; reason } ->
              check_int "bad-request id echoed" 7 id;
              check_bool "reason names the problem" true (reason <> "")
          | _ -> Alcotest.fail "unknown workload should be Bad_request");
          match
            rpc fd (P.request ~id:8 ~workload:"cfrac" ~mode:"warp" ~size:"quick" ())
          with
          | P.Bad_request _ -> ()
          | _ -> Alcotest.fail "unknown mode should be Bad_request")

(* --max-queue 0 makes admission control deterministic: every cold
   request bounces with Overloaded, while warm requests (admission-
   free reads) still serve. *)
let test_admission_control () =
  with_daemon ~extra:[ "--max-queue"; "0" ] (fun ~socket ~dir:_ ->
      match connect socket with
      | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          (match rpc fd (cfrac_req ~id:1 ()) with
          | P.Overloaded { id } -> check_int "overloaded echoes id" 1 id
          | _ -> Alcotest.fail "cold request should bounce at queue cap 0"))

(* One slow full-size cell occupies the single worker; a queued quick
   request with a 100ms deadline must resolve Deadline, not hang. *)
let test_deadline_expiry () =
  with_daemon ~extra:[ "--workers"; "1" ] (fun ~socket ~dir:_ ->
      match connect socket with
      | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          let slow =
            P.request ~id:1 ~seed:100 ~workload:"moss" ~mode:"sun"
              ~size:"full" ()
          in
          P.write_frame fd (P.encode_request slow);
          let quick = cfrac_req ~id:2 ~seed:101 ~deadline_s:0.1 () in
          P.write_frame fd (P.encode_request quick);
          (* responses arrive in completion order: the deadline first *)
          (match P.read_frame fd with
          | Error e -> Alcotest.failf "read: %s" e
          | Ok p -> (
              match P.decode_response p with
              | Ok (P.Deadline { id }) -> check_int "deadline id" 2 id
              | Ok r ->
                  Alcotest.failf "expected Deadline for id 2, got id %d"
                    (P.response_id r)
              | Error e -> Alcotest.failf "decode: %s" e));
          match P.read_frame fd with
          | Error e -> Alcotest.failf "read slow cell: %s" e
          | Ok p -> (
              match P.decode_response p with
              | Ok (P.Cell { id; _ }) -> check_int "slow cell id" 1 id
              | Ok _ -> Alcotest.fail "slow cell did not complete"
              | Error e -> Alcotest.failf "decode: %s" e))

(* kill -9, wipe the cache but keep the journal, restart: the daemon
   must rebuild the cache from the journal and serve the cell warm. *)
let test_journal_recovery () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let pid = spawn_daemon ~socket ~dir () in
  wait_ready socket;
  let first =
    match connect socket with
    | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
    | Ok fd ->
        Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
        (match rpc fd (cfrac_req ~id:1 ()) with
        | P.Cell { warm; cell; _ } ->
            check_bool "cold first" false warm;
            Results.Json.to_string ~indent:false cell
        | _ -> Alcotest.fail "no cell before the kill")
  in
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  (* wipe every cache entry; the journal survives *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then
        Sys.remove (Filename.concat dir name))
    (Sys.readdir dir);
  let pid2 = spawn_daemon ~socket ~dir () in
  wait_ready socket;
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid2))
    (fun () ->
      match connect socket with
      | Error e -> Alcotest.failf "reconnect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          (match rpc fd (cfrac_req ~id:2 ()) with
          | P.Cell { warm; cell; _ } ->
              check_bool "journal-recovered cell is warm" true warm;
              check_str "recovered bytes are identical" first
                (Results.Json.to_string ~indent:false cell)
          | _ -> Alcotest.fail "no cell after restart"))

(* A journal written by a different build must not be replayed into
   the cache: the content-addressed cache's invariant is that a
   rebuild invalidates every entry, and recovery stamping old
   measurements with the new build id would serve stale numbers warm.
   Simulate the rebuild by rewriting the journal's build ids. *)
let test_stale_build_journal_not_replayed () =
  let dir = fresh_dir () in
  let socket = Filename.concat dir "s.sock" in
  let journal = Filename.concat dir "serve.journal" in
  let pid = spawn_daemon ~socket ~dir () in
  wait_ready socket;
  (match connect socket with
  | Error e -> Alcotest.failf "connect: %s" (Unix.error_message e)
  | Ok fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (match rpc fd (cfrac_req ~id:1 ()) with
      | P.Cell { warm; _ } -> check_bool "cold first" false warm
      | _ -> Alcotest.fail "no cell before the kill"));
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  (* wipe the cache, as after a rebuild with a fresh cache dir … *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".json" then
        Sys.remove (Filename.concat dir name))
    (Sys.readdir dir);
  (* … and re-stamp every journal line as another build's *)
  let entries, torn = Harness.Journal.load_keyed journal in
  check_bool "the kill left journaled cells" true (entries <> []);
  check_int "no torn lines in this controlled kill" 0 torn;
  let oc =
    open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644
      journal
  in
  List.iter
    (fun (e : Harness.Journal.keyed) ->
      Harness.Journal.append_keyed oc
        { e with Harness.Journal.k_build = "stale-build" })
    entries;
  close_out oc;
  let pid2 = spawn_daemon ~socket ~dir () in
  wait_ready socket;
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid2))
    (fun () ->
      (match connect socket with
      | Error e -> Alcotest.failf "reconnect: %s" (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          (match rpc fd (cfrac_req ~id:2 ()) with
          | P.Cell { warm; _ } ->
              check_bool "stale-build journal must not serve warm" false warm
          | _ -> Alcotest.fail "no cell after restart"));
      (* recovery purged the stale lines instead of re-parsing them
         forever: everything left in the journal is this build's *)
      let entries, _ = Harness.Journal.load_keyed journal in
      check_bool "stale lines purged" true
        (List.for_all
           (fun (e : Harness.Journal.keyed) ->
             e.Harness.Journal.k_build <> "stale-build")
           entries))

(* The lockfiles only guard the store; the socket itself must not be
   stolen by a daemon configured with a different --cache-dir.  The
   second daemon probes the socket, finds it answering, and refuses. *)
let test_live_socket_not_stolen () =
  with_daemon (fun ~socket ~dir:_ ->
      let dir2 = fresh_dir () in
      let pid2 = spawn_daemon ~socket ~dir:dir2 () in
      (match Unix.waitpid [] pid2 with
      | _, Unix.WEXITED code ->
          check_int "second daemon refuses to start" 2 code
      | _ -> Alcotest.fail "second daemon did not exit normally");
      (* the first daemon's socket is intact and still serving *)
      match connect socket with
      | Error e ->
          Alcotest.failf "original daemon lost its socket: %s"
            (Unix.error_message e)
      | Ok fd ->
          Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
          (match rpc fd (cfrac_req ~id:9 ()) with
          | P.Cell _ -> ()
          | _ -> Alcotest.fail "original daemon unusable after the probe"))

(* ------------------------------------------------------------------ *)
(* Chaos property: kill at a random instant, byte-identical cells *)

let chaos_mix seed =
  [
    P.request ~seed ~workload:"cfrac" ~mode:"sun" ~size:"quick" ();
    P.request ~seed ~workload:"cfrac" ~mode:"gc" ~size:"quick" ();
    P.request ~seed ~workload:"cfrac" ~mode:"region" ~size:"quick" ();
    P.request ~seed ~plan:"budget=64,ramp=0:0.002" ~workload:"cfrac"
      ~mode:"region" ~size:"quick" ();
  ]

let load_config ~kills ~chaos dir =
  let socket = Filename.concat dir "s.sock" in
  {
    Serve.Load.socket;
    spawn = (fun () -> spawn_daemon ~socket ~dir ());
    concurrency = 8;
    requests = 120;
    duration_s = 0.;
    seed = 42;
    chaos;
    kills;
    request_budget_s = 60.;
    deadline_s = None;
    mix = chaos_mix 42;
    log = ignore;
  }

(* One uninterrupted, chaos-free run: the reference cell bytes every
   interrupted run must reproduce. *)
let baseline_cells =
  lazy
    (let dir = fresh_dir () in
     let r =
       Serve.Load.run
         (load_config ~kills:[]
            ~chaos:{ Serve.Load.p_garbage = 0.; p_disconnect = 0. }
            dir)
     in
     check_int "baseline has no hung clients" 0 r.Serve.Load.unresolved;
     check_int "baseline daemon exits 0" 0 r.Serve.Load.daemon_exit;
     check_bool "baseline served cells" true (r.Serve.Load.cells <> []);
     r.Serve.Load.cells)

let scan_cache_corruption dir =
  Array.fold_left
    (fun acc name ->
      let has_tmp =
        let rec go i =
          i + 4 <= String.length name
          && (String.sub name i 4 = ".tmp" || go (i + 1))
        in
        go 0
      in
      if (not (Filename.check_suffix name ".json")) || has_tmp then acc
      else
        let path = Filename.concat dir name in
        let text =
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Results.Cell.of_string text with
        | Ok _ -> acc
        | Error e -> (name, e) :: acc)
    [] (Sys.readdir dir)

let chaos_trial kill_at =
  let baseline = Lazy.force baseline_cells in
  let dir = fresh_dir () in
  let r =
    Serve.Load.run
      (load_config ~kills:[ kill_at ]
         ~chaos:{ Serve.Load.p_garbage = 0.05; p_disconnect = 0.05 }
         dir)
  in
  check_int "no hung clients" 0 r.Serve.Load.unresolved;
  check_int "no divergent serves within the run" 0 r.Serve.Load.divergent;
  check_int "daemon drains cleanly at the end" 0 r.Serve.Load.daemon_exit;
  check_bool "the interrupted run served cells" true
    (r.Serve.Load.cells <> []);
  (* byte-identity against the uninterrupted reference, key by key *)
  List.iter
    (fun (key, bytes) ->
      match List.assoc_opt key baseline with
      | None -> Alcotest.failf "key %s not served by the baseline" key
      | Some expected ->
          check_str (Printf.sprintf "cell %s byte-identical" key) expected
            bytes)
    r.Serve.Load.cells;
  (* and the kill left nothing torn in the store *)
  match scan_cache_corruption dir with
  | [] -> ()
  | (name, e) :: _ -> Alcotest.failf "corrupt cache entry %s: %s" name e

let test_chaos_fixed_kill () = chaos_trial 0.12

let test_chaos_random_kill =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:3
       ~name:"kill -9 at a random instant; restart serves identical bytes"
       (QCheck.make
          ~print:(Printf.sprintf "%.3f")
          QCheck.Gen.(float_range 0.02 0.45))
       (fun kill_at ->
         chaos_trial kill_at;
         true))

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          tc "frame reassembly, byte at a time" `Quick test_frame_roundtrip;
          tc "frame violations rejected" `Quick test_frame_violations;
          tc "request codec + dedupe key" `Quick test_request_roundtrip;
          tc "response codec, all variants" `Quick test_response_roundtrip;
        ] );
      ( "daemon",
        [
          tc "cold then warm, byte-identical" `Slow test_cold_then_warm;
          tc "malformed frames never kill it" `Slow
            test_malformed_frames_survive;
          tc "admission control bounces cold work" `Slow
            test_admission_control;
          tc "queued request deadline expires" `Slow test_deadline_expiry;
          tc "journal recovery after kill -9" `Slow test_journal_recovery;
          tc "stale-build journal never replayed" `Slow
            test_stale_build_journal_not_replayed;
          tc "live socket not stolen by a second daemon" `Slow
            test_live_socket_not_stolen;
        ] );
      ( "chaos",
        [
          tc "fixed kill point" `Slow test_chaos_fixed_kill;
          test_chaos_random_kill;
        ] );
    ]
