(* The machine-readable results layer: deterministic JSON, the
   versioned Cell schema, the persistent store + golden diff, the
   content-addressed cell cache, and the generated-docs engine.  The
   load-bearing properties: a cache hit is byte-identical to a cold
   run, any identity-field change misses, and a drifted document is
   detected with a readable diff. *)

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Json *)

let rec json_gen depth =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Results.Json.Null;
        map (fun b -> Results.Json.Bool b) bool;
        map (fun i -> Results.Json.Int i) int;
        (* Finite doubles only: NaN/inf are not JSON. *)
        map (fun f -> Results.Json.Float f) (float_bound_inclusive 1e15);
        map (fun s -> Results.Json.String s) string_printable;
      ]
  in
  if depth = 0 then scalar
  else
    oneof
      [
        scalar;
        map (fun l -> Results.Json.List l) (list_size (0 -- 4) (json_gen (depth - 1)));
        map
          (fun kvs -> Results.Json.Obj kvs)
          (list_size (0 -- 4)
             (pair string_printable (json_gen (depth - 1))));
      ]

let json_arb = QCheck.make ~print:Results.Json.to_string (json_gen 3)

let prop_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"to_string |> of_string round-trips"
    json_arb (fun j ->
      match Results.Json.of_string (Results.Json.to_string j) with
      | Ok j' -> j = j'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let prop_json_compact_roundtrip =
  QCheck.Test.make ~count:300 ~name:"compact printing round-trips too"
    json_arb (fun j ->
      match
        Results.Json.of_string (Results.Json.to_string ~indent:false j)
      with
      | Ok j' -> j = j'
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_json_diff () =
  let open Results.Json in
  let a = Obj [ ("x", Int 1); ("p", Obj [ ("b", String "old") ]) ] in
  let b = Obj [ ("x", Int 2); ("p", Obj [ ("b", String "new") ]) ] in
  check_int "two differences" 2 (List.length (diff a b));
  check_int "provenance-like subtree pruned" 1
    (List.length (diff ~ignore_keys:[ "p" ] a b));
  check_int "equal values: no diff" 0 (List.length (diff a a))

(* ------------------------------------------------------------------ *)
(* Cell schema *)

(* One cheap real cell, shared by the schema tests. *)
let sample_result =
  lazy
    (Workloads.Workload.run_collect
       (Workloads.Workload.find "cfrac")
       (Workloads.Api.Direct Workloads.Api.Sun)
       Workloads.Workload.Quick)

let sample_cell ?(seed = 0) ?(plan = "none") ?(build_id = "test-build") () =
  Results.Cell.make ~size:"quick" ~build_id ~seed ~plan
    (Lazy.force sample_result)

let test_cell_roundtrip () =
  let c = sample_cell () in
  let s = Results.Cell.to_string c in
  match Results.Cell.of_string s with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok c' ->
      check_str "re-encode is byte-identical" s (Results.Cell.to_string c');
      check_bool "decoded result equals original" true
        (c'.Results.Cell.result = c.Results.Cell.result);
      check_bool "provenance survives" true (c'.Results.Cell.prov = c.Results.Cell.prov)

(* A committed golden cell: the schema contract frozen as bytes.  If
   encoding or field naming changes, this fails before any golden
   results file in the wild does. *)
let golden_cell_json =
  {|{
  "schema": 1,
  "size": "quick",
  "provenance": {
    "build_id": "golden-build",
    "seed": 7,
    "plan": "budget=8"
  },
  "result": {
    "workload": "wl",
    "mode": "sun",
    "summary": "s",
    "cycles": 123,
    "base_instrs": 100,
    "alloc_instrs": 10,
    "refcount_instrs": 1,
    "stack_scan_instrs": 2,
    "cleanup_instrs": 3,
    "read_stall_cycles": 4,
    "write_stall_cycles": 5,
    "os_bytes": 4096,
    "emu_overhead_bytes": 0,
    "req_allocs": 6,
    "req_total_bytes": 7,
    "req_max_bytes": 8,
    "regions": {
      "total_regions": 2,
      "max_live_regions": 1,
      "max_region_bytes": 4096,
      "avg_region_bytes": 2048.5,
      "avg_allocs_per_region": 3.0
    }
  }
}
|}

let test_cell_golden () =
  match Results.Cell.of_string golden_cell_json with
  | Error e -> Alcotest.failf "golden cell no longer decodes: %s" e
  | Ok c ->
      check_str "golden cell re-encodes byte-identically" golden_cell_json
        (Results.Cell.to_string c);
      check_str "workload" "wl" (Results.Cell.workload c);
      check_int "seed" 7 c.Results.Cell.prov.Results.Cell.seed

let test_cell_rejects_damage () =
  let reject label s =
    match Results.Cell.of_string s with
    | Ok _ -> Alcotest.failf "%s: damaged cell decoded" label
    | Error _ -> ()
  in
  reject "not json" "nonsense";
  reject "wrong schema"
    {|{ "schema": 999, "size": "quick", "provenance": { "build_id": "b", "seed": 0, "plan": "none" }, "result": {} }|};
  reject "missing measurement field"
    {|{ "schema": 1, "size": "quick", "provenance": { "build_id": "b", "seed": 0, "plan": "none" }, "result": { "workload": "w" } }|}

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_roundtrip_and_diff () =
  let c = sample_cell () in
  let s = Results.Store.of_list [ c ] in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "results-test-%d.json" (Unix.getpid ()))
  in
  Results.Store.save s path;
  (match Results.Store.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok s' ->
      check_str "save/load is byte-stable" (Results.Store.to_string s)
        (Results.Store.to_string s');
      check_int "one cell" 1 (Results.Store.length s'));
  Sys.remove path;
  (* Same measurements, different build id: the golden diff must stay
     empty (provenance is ignored by construction). *)
  let rebuilt = Results.Store.of_list [ sample_cell ~build_id:"other" () ] in
  check_int "provenance-only change is not drift" 0
    (List.length (Results.Store.diff ~expected:s ~actual:rebuilt));
  (* A changed measurement must be reported, naming the cell. *)
  let r = Lazy.force sample_result in
  let tampered =
    Results.Store.of_list
      [
        Results.Cell.make ~size:"quick" ~build_id:"other"
          { r with Workloads.Results.cycles = r.Workloads.Results.cycles + 1 };
      ]
  in
  (match Results.Store.diff ~expected:s ~actual:tampered with
  | [] -> Alcotest.fail "tampered cycles not detected"
  | line :: _ -> check_bool "diff line is non-empty" true (line <> ""));
  (* Missing cell. *)
  check_bool "missing cell reported" true
    (Results.Store.diff ~expected:s ~actual:(Results.Store.of_list []) <> [])

(* ------------------------------------------------------------------ *)
(* Cache *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "repro-cache-test-%d-%d" (Unix.getpid ()) !n)
    in
    d

let find_sample cache ?(seed = 0) ?(plan = "none") ?(size = "quick") () =
  Results.Cache.find cache ~workload:"cfrac" ~mode:"sun" ~size ~seed ~plan

let test_cache_hit_and_invalidation () =
  let dir = fresh_dir () in
  let cache = Results.Cache.create ~dir ~build_id:"build-A" () in
  let c = sample_cell ~build_id:"build-A" () in
  Results.Cache.store cache c;
  (match find_sample cache () with
  | None -> Alcotest.fail "stored cell not found"
  | Some c' ->
      check_str "hit is byte-identical to the stored cell"
        (Results.Cell.to_string c) (Results.Cell.to_string c'));
  (* Identity-field changes must miss. *)
  check_bool "different seed misses" true (find_sample cache ~seed:1 () = None);
  check_bool "different plan misses" true
    (find_sample cache ~plan:"budget=8" () = None);
  check_bool "different size misses" true
    (find_sample cache ~size:"full" () = None);
  let other_build = Results.Cache.create ~dir ~build_id:"build-B" () in
  check_bool "different build id misses" true (find_sample other_build () = None);
  (* Damage: a truncated entry degrades to a miss, never an error. *)
  let key =
    Results.Cache.key cache ~workload:"cfrac" ~mode:"sun" ~size:"quick"
      ~seed:0 ~plan:"none"
  in
  let path = Filename.concat dir (key ^ ".json") in
  let oc = open_out path in
  output_string oc "{ torn";
  close_out oc;
  check_bool "torn entry is a miss" true (find_sample cache () = None)

(* Size-capped eviction: oldest-served entries go first, a hot entry
   survives because `find` bumps its mtime, and in-flight temp files
   are never touched. *)
let test_cache_sweep_lru () =
  let dir = fresh_dir () in
  let cache = Results.Cache.create ~dir ~build_id:"build-A" () in
  let entry_path seed =
    Filename.concat dir
      (Results.Cache.key cache ~workload:"cfrac" ~mode:"sun" ~size:"quick"
         ~seed ~plan:"none"
      ^ ".json")
  in
  for seed = 0 to 9 do
    Results.Cache.store cache (sample_cell ~seed ~build_id:"build-A" ());
    (* distinct, strictly increasing ages without sleeping: backdate
       seed i to i+1 seconds past the epoch *)
    let t = float_of_int (seed + 1) in
    Unix.utimes (entry_path seed) t t
  done;
  (* Serving seed 0 bumps it to "now", making it the hottest entry. *)
  (match find_sample cache ~seed:0 () with
  | Some _ -> ()
  | None -> Alcotest.fail "warm entry not found");
  let entry_bytes = (Unix.stat (entry_path 0)).Unix.st_size in
  (* leave an in-flight temp file lying around: sweeps must skip it *)
  let tmp = Filename.concat dir "entry.json.tmp.999" in
  let oc = open_out tmp in
  output_string oc (String.make 4096 'x');
  close_out oc;
  (* Cap at ~3 entries: 7 of the 10 must be evicted, oldest first. *)
  let evicted = Results.Cache.sweep cache ~max_bytes:(3 * entry_bytes) in
  check_int "evicted down to the cap" 7 evicted;
  check_bool "hot entry survived the sweep" true
    (find_sample cache ~seed:0 () <> None);
  check_bool "in-flight temp file untouched" true (Sys.file_exists tmp);
  check_int "already under cap: sweep is a no-op" 0
    (Results.Cache.sweep cache ~max_bytes:(3 * entry_bytes));
  (* survivors are exactly the youngest mtimes: seeds 8, 9 and the
     bumped seed 0 *)
  List.iter
    (fun seed ->
      check_bool
        (Printf.sprintf "seed %d present after sweep" seed)
        true
        (find_sample cache ~seed () <> None))
    [ 0; 8; 9 ];
  check_bool "coldest entry evicted" true (find_sample cache ~seed:1 () = None)

(* Advisory store lock: a second process gets a readable diagnostic,
   the same process can re-acquire after release, and a dead holder
   (kill -9) releases implicitly because lockf locks die with the
   process. *)
let test_lockfile_contention () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "LOCK" in
  let l =
    match Results.Lockfile.acquire ~owner:"repro-test" path with
    | Ok l -> l
    | Error e -> Alcotest.failf "first acquire failed: %s" e
  in
  (* lockf locks are per-process, so contention needs a child *)
  (match Unix.fork () with
  | 0 ->
      let code =
        match Results.Lockfile.acquire ~owner:"child" path with
        | Error msg
          when String.length msg > 0
               && (let contains hay needle =
                     let n = String.length hay
                     and m = String.length needle in
                     let rec go i =
                       i + m <= n
                       && (String.sub hay i m = needle || go (i + 1))
                     in
                     go 0
                   in
                   contains msg "repro-test" && contains msg path) ->
            0
        | Error _ -> 3 (* locked, but the diagnostic lost the holder *)
        | Ok _ -> 4 (* double acquisition: the lock is not a lock *)
      in
      Unix._exit code
  | pid -> (
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED 3 ->
          Alcotest.fail "contention diagnostic does not name the holder"
      | _, Unix.WEXITED 4 -> Alcotest.fail "second process acquired the lock"
      | _ -> Alcotest.fail "child crashed"));
  Results.Lockfile.release l;
  (* released: the next acquire (same process, fresh fd) succeeds *)
  match Results.Lockfile.acquire ~owner:"again" path with
  | Ok l2 -> Results.Lockfile.release l2
  | Error e -> Alcotest.failf "acquire after release failed: %s" e

let test_cache_key_is_stable () =
  let cache = Results.Cache.create ~dir:(fresh_dir ()) ~build_id:"b" () in
  let k () =
    Results.Cache.key cache ~workload:"w" ~mode:"m" ~size:"quick" ~seed:1
      ~plan:"none"
  in
  check_str "same identity, same key" (k ()) (k ());
  let k2 =
    Results.Cache.key cache ~workload:"w" ~mode:"m" ~size:"quick" ~seed:2
      ~plan:"none"
  in
  check_bool "seed reaches the digest" true (k () <> k2)

(* ------------------------------------------------------------------ *)
(* Warm vs cold matrix: a fully cached run must render byte-identical
   reports while executing zero workloads. *)

let render_report m =
  String.concat "\n"
    [
      Harness.Table23.render_table2 m;
      Harness.Table23.render_table3 m;
      Harness.Fig8.render m;
      Harness.Fig9.render m;
      Harness.Fig10.render m;
      Harness.Fig11.render m;
      Harness.Claims.render m;
      Harness.Table23.table2_md m;
      Harness.Fig9.md m;
      Harness.Claims.md m;
    ]

let test_warm_cache_byte_identical () =
  let dir = fresh_dir () in
  let disk () = Results.Cache.create ~dir ~build_id:"matrix-test" () in
  let cold = Harness.Matrix.create ~disk:(disk ()) Workloads.Workload.Quick in
  ignore (Harness.Matrix.run_all ~domains:1 cold);
  let cold_report = render_report cold in
  let _, cold_misses = Harness.Matrix.cache_stats cold in
  check_int "cold run computed every cell" 37 cold_misses;
  let warm = Harness.Matrix.create ~disk:(disk ()) Workloads.Workload.Quick in
  ignore (Harness.Matrix.run_all ~domains:1 warm);
  let warm_report = render_report warm in
  let warm_hits, warm_misses = Harness.Matrix.cache_stats warm in
  check_int "warm run computed nothing" 0 warm_misses;
  check_int "warm run served every cell from disk" 37 warm_hits;
  check_str "warm report is byte-identical to cold" cold_report warm_report;
  (* --refresh: recomputes everything, still byte-identical. *)
  let refreshed =
    Harness.Matrix.create ~disk:(disk ()) ~refresh:true Workloads.Workload.Quick
  in
  ignore (Harness.Matrix.run_all ~domains:1 refreshed);
  let hits, misses = Harness.Matrix.cache_stats refreshed in
  check_int "--refresh never reads" 0 hits;
  check_int "--refresh recomputes every cell" 37 misses;
  check_str "--refresh report is byte-identical" cold_report
    (render_report refreshed);
  (* The snapshot store carries every cell with provenance. *)
  let store = Harness.Matrix.store warm in
  check_int "store holds all cells" 37 (Results.Store.length store);
  List.iter
    (fun c ->
      check_str "store provenance carries the build id" "matrix-test"
        c.Results.Cell.prov.Results.Cell.build_id)
    (Results.Store.to_list store)

(* ------------------------------------------------------------------ *)
(* Docs: substitution and drift detection *)

let docs_matrix =
  lazy
    (let dir = fresh_dir () in
     let m =
       Harness.Matrix.create
         ~disk:(Results.Cache.create ~dir ~build_id:"docs-test" ())
         Workloads.Workload.Quick
     in
     ignore (Harness.Matrix.run_all ~domains:1 m);
     m)

let test_docs_regenerate_and_drift () =
  let m = Lazy.force docs_matrix in
  let doc =
    "# title\n\nprose stays\n\n<!-- generated:fig9 -->\nSTALE NUMBERS\n\
     <!-- /generated:fig9 -->\n\ntrailing prose\n"
  in
  match Harness.Docs.regenerate m doc with
  | Error e -> Alcotest.failf "regenerate failed: %s" e
  | Ok fresh ->
      let contains hay needle =
        let n = String.length hay and k = String.length needle in
        let rec go i = i + k <= n && (String.sub hay i k = needle || go (i + 1)) in
        go 0
      in
      check_bool "stale body replaced" false (contains fresh "STALE NUMBERS");
      check_bool "fresh body rendered" true
        (contains fresh "cost of safety");
      check_bool "prose preserved" true
        (contains fresh "prose stays" && contains fresh "trailing prose");
      check_bool "markers preserved" true
        (contains fresh "<!-- generated:fig9 -->"
        && contains fresh "<!-- /generated:fig9 -->");
      (* Drift: the stale committed doc vs its regeneration. *)
      (match Harness.Docs.drift ~label:"DOC" ~current:doc ~regenerated:fresh with
      | [] -> Alcotest.fail "stale document not flagged"
      | hd :: _ -> check_bool "diff labelled" true (contains hd "DOC"));
      check_int "no drift on identical text" 0
        (List.length
           (Harness.Docs.drift ~label:"DOC" ~current:fresh ~regenerated:fresh));
      (* Idempotence: regenerating a regenerated doc changes nothing. *)
      (match Harness.Docs.regenerate m fresh with
      | Error e -> Alcotest.failf "second regenerate failed: %s" e
      | Ok fresh2 -> check_str "regeneration is idempotent" fresh fresh2)

let test_docs_bad_markers () =
  let m = Lazy.force docs_matrix in
  (match Harness.Docs.regenerate m "<!-- generated:nonsense -->\n<!-- /generated:nonsense -->" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown block id accepted");
  (match Harness.Docs.regenerate m "<!-- generated:fig9 -->\nno close" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated block accepted");
  (* A doc with no markers passes through untouched. *)
  match Harness.Docs.regenerate m "plain text\n" with
  | Ok s -> check_str "no markers, no change" "plain text\n" s
  | Error e -> Alcotest.failf "plain doc rejected: %s" e

(* The committed EXPERIMENTS.md and golden results are covered by the
   CI `repro docs --check` gate (see .github/workflows/ci.yml), which
   runs the real binary against the real files. *)

(* ------------------------------------------------------------------ *)
(* Trend: the cross-run perf observatory *)

(* The committed BENCH_N.json trajectory sits at the repo root; tests
   run from _build/default/test, so walk upwards until it appears. *)
let bench_dir () =
  let rec go dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir "BENCH_1.json") then Some dir
    else go (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  go (Sys.getcwd ()) 0

let test_trend_parses_committed_history () =
  match bench_dir () with
  | None -> Alcotest.fail "BENCH_1.json not found above the test cwd"
  | Some dir -> (
      match Results.Trend.load_dir dir with
      | Error e -> Alcotest.failf "load_dir: %s" e
      | Ok points ->
          check_bool "whole trajectory ingested" true (List.length points >= 4);
          let prev = ref 0 in
          List.iter
            (fun (p : Results.Trend.point) ->
              check_bool "sorted by index" true (p.index > !prev);
              prev := p.index;
              check_bool
                (p.file ^ " carries at least one metric")
                true
                (p.metrics <> []))
            points;
          (* the schema additions show up where they were introduced *)
          let nth n = List.nth points (n - 1) in
          (* B1–B4 are bench-harness records: all carry the v1 report
             metric.  B5 is a serveload (v6) record: serve metrics
             only — the carrier-aware gate must read report metrics
             from the newest *bench* record, not choke on B5. *)
          List.iter
            (fun n ->
              check_bool
                (Printf.sprintf "B%d carries the v1 report metric" n)
                true
                (Results.Trend.metric (nth n) "report.total_wall_s" <> None))
            [ 1; 2; 3; 4 ];
          check_bool "v1 has no replay section" true
            (Results.Trend.metric (nth 1) "replay.geomean_speedup" = None);
          check_bool "v4+ has the replay geomean" true
            (Results.Trend.metric (nth 3) "replay.geomean_speedup" <> None);
          check_bool "the serveload record carries throughput" true
            (List.length points < 5
            || Results.Trend.metric (nth 5) "serve.throughput_rps" <> None);
          let contains hay needle =
            let n = String.length hay and m = String.length needle in
            let rec go i =
              i + m <= n && (String.sub hay i m = needle || go (i + 1))
            in
            go 0
          in
          let t = Results.Trend.table points in
          check_bool "table renders every record" true
            (String.length t > 0
            && List.for_all
                 (fun (p : Results.Trend.point) ->
                   contains t (Printf.sprintf " B%d |" p.index))
                 points))

let test_trend_gate () =
  let mk file total speedup =
    match
      Results.Trend.parse ~file
        (Printf.sprintf
           {|{"schema":"bench-v9","report":{"total_wall_s":%f},"replay":{"geomean_speedup":%f}}|}
           total speedup)
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (* flat trajectory: no regression *)
  let a = mk "BENCH_1.json" 10.0 3.0 and b = mk "BENCH_2.json" 11.0 2.9 in
  check_int "within threshold" 0
    (List.length (Results.Trend.check ~threshold:0.5 [ a; b ]));
  (* wall doubles: Lower_better trips *)
  let c = mk "BENCH_3.json" 25.0 2.9 in
  (match Results.Trend.check ~threshold:0.5 [ a; b; c ] with
  | [ r ] ->
      check_str "metric" "report.total_wall_s" r.Results.Trend.r_metric;
      check_bool "compares the two newest carriers" true
        (snd r.r_prev = "BENCH_2.json" && snd r.r_last = "BENCH_3.json");
      check_bool "signed fraction" true (Float.abs (r.r_change -. (14.0 /. 11.0)) < 1e-9)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* speedup halves: Higher_better trips too *)
  let d = mk "BENCH_4.json" 25.0 1.2 in
  check_int "direction-adjusted gate" 1
    (List.length (Results.Trend.check ~threshold:0.5 [ b; c; d ]));
  (* a metric missing from the newest record is read from older ones *)
  let e =
    match
      Results.Trend.parse ~file:"BENCH_5.json" {|{"schema":"bench-v9"}|}
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  check_int "newest record without the metric falls back to older carriers" 1
    (List.length (Results.Trend.check ~threshold:0.5 [ b; c; e ]))

let test_volatile_keys () =
  check_bool "wall clocks are volatile" true
    (Results.Volatile.is_volatile "wall_s");
  check_bool "micro timings are volatile" true
    (Results.Volatile.is_volatile "ns_per_run");
  check_bool "simulated counts are not" false
    (Results.Volatile.is_volatile "os_bytes");
  check_bool "provenance is in the shared list" true
    (List.mem "prov" Results.Volatile.keys)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "results"
    [
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_compact_roundtrip;
          quick "structural diff with ignored keys" test_json_diff;
        ] );
      ( "cell",
        [
          quick "encode/decode round-trip" test_cell_roundtrip;
          quick "golden bytes stay decodable" test_cell_golden;
          quick "damage is rejected field-by-field" test_cell_rejects_damage;
        ] );
      ("store", [ quick "save/load/diff" test_store_roundtrip_and_diff ]);
      ( "cache",
        [
          quick "hit, invalidation, damage" test_cache_hit_and_invalidation;
          quick "key stability" test_cache_key_is_stable;
          quick "size-capped LRU sweep" test_cache_sweep_lru;
          quick "advisory store lock" test_lockfile_contention;
        ] );
      ( "matrix",
        [ quick "warm cache is byte-identical, 0 runs" test_warm_cache_byte_identical ] );
      ( "docs",
        [
          quick "regenerate + drift detection" test_docs_regenerate_and_drift;
          quick "marker validation" test_docs_bad_markers;
        ] );
      ( "trend",
        [
          quick "ingests every committed bench record"
            test_trend_parses_committed_history;
          quick "regression gate directions and carriers" test_trend_gate;
          quick "shared volatile-key list" test_volatile_keys;
        ] );
    ]
