(* Tests for the malloc/free allocators: Sun (best fit), BSD
   (power-of-two), Lea (segregated bins). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type impl = { label : string; make : Sim.Memory.t -> Alloc.Allocator.t }

let impls =
  [
    { label = "sun"; make = Alloc.Sun.create };
    { label = "lea"; make = Alloc.Lea.create };
    { label = "bsd"; make = Alloc.Bsd.create };
  ]

let fresh () = Sim.Memory.create ~with_cache:false ()

(* ------------------------------------------------------------------ *)
(* Behaviours common to all allocators *)

let test_basic impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let p = a.Alloc.Allocator.malloc 10 in
  check_bool "aligned" true (p land 3 = 0);
  check_bool "mapped" true (Sim.Memory.is_mapped mem p);
  check_bool "usable >= requested" true (a.usable_size p >= 10);
  (* The block is writable over its usable size. *)
  let words = a.usable_size p / 4 in
  for i = 0 to words - 1 do
    Sim.Memory.store mem (p + (i * 4)) (i + 1)
  done;
  for i = 0 to words - 1 do
    check "readback" (i + 1) (Sim.Memory.load mem (p + (i * 4)))
  done;
  a.free p

let test_no_overlap impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let rng = Sim.Rng.create 11 in
  let blocks = ref [] in
  for _ = 1 to 200 do
    let size = 1 + Sim.Rng.int rng 200 in
    let p = a.Alloc.Allocator.malloc size in
    blocks := (p, a.usable_size p) :: !blocks
  done;
  let sorted =
    List.sort (fun (p1, _) (p2, _) -> compare p1 p2) !blocks
  in
  let rec disjoint = function
    | (p1, s1) :: ((p2, _) :: _ as rest) ->
        check_bool "blocks disjoint" true (p1 + s1 <= p2);
        disjoint rest
    | [ _ ] | [] -> ()
  in
  disjoint sorted

let test_reuse_after_free impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let p = a.Alloc.Allocator.malloc 64 in
  a.free p;
  let q = a.malloc 64 in
  check (impl.label ^ " reuses freed block") p q

let test_double_free_detected impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let p = a.Alloc.Allocator.malloc 32 in
  a.free p;
  (match a.free p with
  | () -> Alcotest.fail "expected Invalid_free"
  | exception Alloc.Allocator.Invalid_free _ -> ());
  match a.free 0 with
  | () -> Alcotest.fail "expected Invalid_free for NULL"
  | exception Alloc.Allocator.Invalid_free _ -> ()

let test_stats impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let s = a.Alloc.Allocator.stats in
  let p = a.malloc 10 in
  let q = a.malloc 21 in
  check "allocs" 2 (Alloc.Stats.allocs s);
  (* 10 -> 12, 21 -> 24: paper rounds sizes to a multiple of 4 *)
  check "total bytes rounded" 36 (Alloc.Stats.total_bytes s);
  check "live" 36 (Alloc.Stats.live_bytes s);
  a.free p;
  check "live after free" 24 (Alloc.Stats.live_bytes s);
  check "max live" 36 (Alloc.Stats.max_live_bytes s);
  a.free q;
  check "frees" 2 (Alloc.Stats.frees s);
  check_bool "os bytes nonzero" true (Alloc.Stats.os_bytes s > 0)

let test_large_allocation impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let p = a.Alloc.Allocator.malloc 100_000 in
  check_bool "large usable" true (a.usable_size p >= 100_000);
  Sim.Memory.store mem (p + 99_996) 5;
  check "end writable" 5 (Sim.Memory.load mem (p + 99_996));
  a.free p

let test_malloc_zero_rejected impl () =
  let mem = fresh () in
  let a = impl.make mem in
  match a.Alloc.Allocator.malloc 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_cost_charged_to_alloc impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let c = Sim.Memory.cost mem in
  let before = Sim.Cost.alloc_instrs c in
  let base_before = Sim.Cost.base_instrs c in
  let p = a.Alloc.Allocator.malloc 40 in
  a.free p;
  check_bool "alloc instrs charged" true (Sim.Cost.alloc_instrs c > before);
  check "no base instrs" base_before (Sim.Cost.base_instrs c)

let test_check_heap_clean impl () =
  let mem = fresh () in
  let a = impl.make mem in
  a.Alloc.Allocator.check_heap ();
  let ps = Array.init 40 (fun i -> a.malloc (8 + (i * 13 mod 200))) in
  a.check_heap ();
  Array.iteri (fun i p -> if i mod 2 = 0 then a.free p) ps;
  a.check_heap ()

let test_check_heap_detects_corruption impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let p = a.Alloc.Allocator.malloc 32 in
  let _guard = a.malloc 32 in
  a.free p;
  (* Smash the freed chunk's header word (cost-free, as a stray store
     through a dangling pointer would).  The walk must notice. *)
  Sim.Memory.poke mem (p - 4) 0x7FFF0003;
  match a.check_heap () with
  | () -> Alcotest.fail "corrupted header not detected"
  | exception Failure _ -> ()

let test_oom_leaves_heap_consistent impl () =
  let mem = fresh () in
  let a = impl.make mem in
  let keep = a.Alloc.Allocator.malloc 40 in
  Sim.Memory.store mem keep 0x1234;
  let budget = ref 32 in
  Sim.Memory.set_oom_hook mem
    (Some
       (fun n ->
         budget := !budget - n;
         !budget >= 0));
  let faulted = ref false in
  (try
     for _ = 1 to 1_000 do
       ignore (a.malloc 4000)
     done
   with Sim.Memory.Fault _ -> faulted := true);
  check_bool "allocation faulted under page budget" true !faulted;
  (* The denied request must not have corrupted anything: the heap
     walks clean, earlier blocks are intact, and once the hook is
     lifted the allocator works again. *)
  a.check_heap ();
  check "earlier block intact" 0x1234 (Sim.Memory.load mem keep);
  Sim.Memory.set_oom_hook mem None;
  let p = a.malloc 4000 in
  check_bool "allocation succeeds after hook removed" true (p <> 0);
  a.free p;
  a.free keep;
  a.check_heap ()

(* ------------------------------------------------------------------ *)
(* Random traces (qcheck) *)

let trace_gen =
  (* A trace is a list of (op, size): op < 60 -> alloc of size, else
     free of a random live block. *)
  QCheck.(list (pair (int_bound 99) (int_range 1 300)))

let run_trace impl trace =
  let mem = fresh () in
  let a = impl.make mem in
  let check_heap = a.Alloc.Allocator.check_heap in
  let live = ref [] in
  let nlive = ref 0 in
  List.iter
    (fun (op, size) ->
      if op < 60 || !nlive = 0 then begin
        let p = a.Alloc.Allocator.malloc size in
        (* Fill with a sentinel derived from the address. *)
        Sim.Memory.store mem p (p lxor 0x5A5A5A5A);
        live := (p, size) :: !live;
        incr nlive
      end
      else begin
        let idx = op mod !nlive in
        let p, _ = List.nth !live idx in
        (* The sentinel must have survived while live. *)
        if Sim.Memory.load mem p <> (p lxor 0x5A5A5A5A) land 0xFFFFFFFF then
          failwith "live block corrupted";
        a.free p;
        live := List.filteri (fun i _ -> i <> idx) !live;
        decr nlive
      end;
      check_heap ())
    trace;
  (* All remaining sentinels intact. *)
  List.for_all
    (fun (p, _) -> Sim.Memory.load mem p = (p lxor 0x5A5A5A5A) land 0xFFFFFFFF)
    !live

let qcheck_trace impl =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:(impl.label ^ " random alloc/free trace preserves contents")
       trace_gen
       (fun trace -> run_trace impl trace))

(* ------------------------------------------------------------------ *)
(* Allocator-specific behaviours *)

let test_sun_coalescing () =
  let mem = fresh () in
  let a, heap = Alloc.Sun.create_with_heap mem in
  (* Allocate three adjacent blocks, free them in an order that
     exercises prev- and next-coalescing, then a block spanning all
     three must fit without growing the heap. *)
  let p1 = a.Alloc.Allocator.malloc 100 in
  let p2 = a.malloc 100 in
  let p3 = a.malloc 100 in
  let guard = a.malloc 100 in
  let os = Alloc.Stats.os_bytes a.stats in
  a.free p1;
  a.free p3;
  a.free p2;
  Alloc.Chunks.check_invariants heap;
  let big = a.malloc 300 in
  check "coalesced block reused" p1 big;
  check "no heap growth" os (Alloc.Stats.os_bytes a.stats);
  a.free guard

let test_sun_best_fit () =
  let mem = fresh () in
  let a = Alloc.Sun.create mem in
  (* Create two free holes (64 and 32 usable); a 30-byte request must
     take the smaller one even though the bigger is found first. *)
  let h1 = a.Alloc.Allocator.malloc 64 in
  let g1 = a.malloc 16 in
  let h2 = a.malloc 28 in
  let g2 = a.malloc 16 in
  ignore g1;
  ignore g2;
  a.free h1;
  a.free h2;
  let p = a.malloc 28 in
  check "best fit picks smaller hole" h2 p

let test_bsd_power_of_two () =
  let mem = fresh () in
  let a = Alloc.Bsd.create mem in
  let p = a.Alloc.Allocator.malloc 10 in
  check "rounded to 16 total" 12 (a.usable_size p);
  let q = a.malloc 13 in
  check "rounded to 32 total" 28 (a.usable_size q);
  let r = a.malloc 100 in
  check "rounded to 128 total" 124 (a.usable_size r)

let test_bsd_overhead_large () =
  (* Allocating many 36-byte objects: BSD burns 64 bytes each, Lea ~40.
     The paper's Figure 8 shows exactly this gap. *)
  let run make =
    let mem = fresh () in
    let a = make mem in
    for _ = 1 to 2000 do
      ignore (a.Alloc.Allocator.malloc 36)
    done;
    Alloc.Stats.os_bytes a.stats
  in
  let bsd = run Alloc.Bsd.create and lea = run Alloc.Lea.create in
  check_bool "bsd uses more memory" true (bsd > lea * 3 / 2)

let test_lea_bin_reuse_fast () =
  let mem = fresh () in
  let a = Alloc.Lea.create mem in
  (* Freeing then reallocating the same size must hit the exact bin. *)
  let p = a.Alloc.Allocator.malloc 48 in
  let _guard = a.malloc 48 in
  a.free p;
  let q = a.malloc 48 in
  check "exact bin reuse" p q

let test_lea_faster_than_sun_on_many_sizes () =
  (* With many distinct live sizes, Sun's full-list best-fit scan costs
     far more instructions than Lea's bin lookup. *)
  let run make =
    let mem = fresh () in
    let a = make mem in
    let rng = Sim.Rng.create 5 in
    let live = Array.make 400 0 in
    for i = 0 to 399 do
      live.(i) <- a.Alloc.Allocator.malloc (8 + Sim.Rng.int rng 512)
    done;
    (* Churn: free and reallocate randomly. *)
    for _ = 1 to 2000 do
      let i = Sim.Rng.int rng 400 in
      a.free live.(i);
      live.(i) <- a.malloc (8 + Sim.Rng.int rng 512)
    done;
    Sim.Cost.alloc_instrs (Sim.Memory.cost mem)
  in
  let sun = run Alloc.Sun.create and lea = run Alloc.Lea.create in
  check_bool "lea cheaper than sun" true (lea < sun)

let test_sun_split_remainder_reusable () =
  let mem = fresh () in
  let a, heap = Alloc.Sun.create_with_heap mem in
  (* Free a big block, then take a small piece: the remainder must be
     a well-formed free chunk that satisfies the next request. *)
  let big = a.Alloc.Allocator.malloc 1000 in
  let _guard = a.malloc 16 in
  a.free big;
  let small = a.malloc 100 in
  check "split reuses the hole" big small;
  Alloc.Chunks.check_invariants heap;
  let rest = a.malloc 800 in
  check_bool "remainder serves the next request" true
    (rest > big && rest < big + 1008)

let test_lea_no_extension_when_bin_has_fit () =
  let mem = fresh () in
  let a = Alloc.Lea.create mem in
  let keep = Array.init 50 (fun _ -> a.Alloc.Allocator.malloc 64) in
  Array.iter a.free keep;
  let os = Alloc.Stats.os_bytes a.stats in
  for _ = 1 to 50 do
    ignore (a.malloc 64)
  done;
  check "bins satisfied everything" os (Alloc.Stats.os_bytes a.stats)

let test_bsd_size_class_isolation () =
  let mem = fresh () in
  let a = Alloc.Bsd.create mem in
  (* Freed 16-byte chunks must never satisfy 32-byte requests. *)
  let small = Array.init 20 (fun _ -> a.Alloc.Allocator.malloc 8) in
  Array.iter a.free small;
  let big = a.malloc 20 in
  check_bool "no cross-class reuse" true
    (Array.for_all (fun s -> s <> big) small)

let test_usable_size_at_least_requested () =
  List.iter
    (fun impl ->
      let mem = fresh () in
      let a = impl.make mem in
      List.iter
        (fun size ->
          let p = a.Alloc.Allocator.malloc size in
          check_bool
            (Printf.sprintf "%s usable(%d) >= %d" impl.label size size)
            true
            (a.usable_size p >= size))
        [ 1; 3; 4; 15; 16; 17; 100; 555; 4000; 5000 ])
    impls

let test_interleaved_allocators_share_memory () =
  (* Two allocators over one simulated memory must not interfere (the
     chunk heaps handle non-contiguous segments). *)
  let mem = fresh () in
  let a, ha = Alloc.Sun.create_with_heap mem in
  let b, hb = Alloc.Lea.create_with_heap mem in
  let pa = Array.init 100 (fun i -> a.Alloc.Allocator.malloc (16 + (i mod 64))) in
  let pb = Array.init 100 (fun i -> b.Alloc.Allocator.malloc (16 + (i mod 64))) in
  Array.iteri (fun i p -> Sim.Memory.store mem p i) pa;
  Array.iteri (fun i p -> Sim.Memory.store mem p (1000 + i)) pb;
  Array.iteri (fun i p -> check "a intact" i (Sim.Memory.load mem p)) pa;
  Array.iteri (fun i p -> check "b intact" (1000 + i) (Sim.Memory.load mem p)) pb;
  Array.iter a.free pa;
  Array.iter b.free pb;
  Alloc.Chunks.check_invariants ha;
  Alloc.Chunks.check_invariants hb

let test_stats_total_monotone () =
  let mem = fresh () in
  let a = Alloc.Lea.create mem in
  let p = a.Alloc.Allocator.malloc 100 in
  let t1 = Alloc.Stats.total_bytes a.stats in
  a.free p;
  ignore (a.malloc 100);
  check "total counts every allocation" (t1 + 100)
    (Alloc.Stats.total_bytes a.stats)

let () =
  let tc = Alcotest.test_case in
  let common impl =
    ( "common:" ^ impl.label,
      [
        tc "basic alloc/write/free" `Quick (test_basic impl);
        tc "no overlap" `Quick (test_no_overlap impl);
        tc "reuse after free" `Quick (test_reuse_after_free impl);
        tc "double free detected" `Quick (test_double_free_detected impl);
        tc "stats" `Quick (test_stats impl);
        tc "large allocation" `Quick (test_large_allocation impl);
        tc "malloc 0 rejected" `Quick (test_malloc_zero_rejected impl);
        tc "cost context" `Quick (test_cost_charged_to_alloc impl);
        tc "check_heap clean on valid heaps" `Quick (test_check_heap_clean impl);
        tc "check_heap detects corruption" `Quick
          (test_check_heap_detects_corruption impl);
        tc "OOM leaves heap consistent" `Quick
          (test_oom_leaves_heap_consistent impl);
        qcheck_trace impl;
      ] )
  in
  Alcotest.run "alloc"
    (List.map common impls
    @ [
        ( "sun",
          [
            tc "coalescing" `Quick test_sun_coalescing;
            tc "best fit" `Quick test_sun_best_fit;
          ] );
        ( "bsd",
          [
            tc "power of two rounding" `Quick test_bsd_power_of_two;
            tc "memory overhead vs lea" `Quick test_bsd_overhead_large;
          ] );
        ( "lea",
          [
            tc "exact bin reuse" `Quick test_lea_bin_reuse_fast;
            tc "cheaper than sun under churn" `Quick
              test_lea_faster_than_sun_on_many_sizes;
            tc "bins avoid heap growth" `Quick
              test_lea_no_extension_when_bin_has_fit;
          ] );
        ( "cross-cutting",
          [
            tc "sun split remainder" `Quick test_sun_split_remainder_reusable;
            tc "bsd size-class isolation" `Quick test_bsd_size_class_isolation;
            tc "usable >= requested everywhere" `Quick
              test_usable_size_at_least_requested;
            tc "two allocators share one memory" `Quick
              test_interleaved_allocators_share_memory;
            tc "stats total monotone" `Quick test_stats_total_monotone;
          ] );
      ])
