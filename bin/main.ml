(* repro: command-line driver for the reproduction of "Memory
   Management with Explicit Regions" (Gay & Aiken, PLDI 1998). *)

open Cmdliner

let progress msg =
  Printf.eprintf "  %s\n%!" msg

let size_of_full full = if full then Workloads.Workload.Full else Workloads.Workload.Quick

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run the full-size benchmark inputs.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run independent matrix cells on $(docv) OCaml domains \
           (default: the runtime's recommended domain count; 1 = the \
           old sequential path).  Output is byte-identical either way.")

(* Advisory exclusion on shared stores: a batch run and a live [repro
   serve] daemon over the same cache directory (or journal) must not
   interleave writes.  Locks are held for the process lifetime; the OS
   releases them on any exit, including kill -9.  Second acquirers get
   the holder's name instead of silent interleaving. *)
let held_locks : (string, Results.Lockfile.t) Hashtbl.t = Hashtbl.create 4

let acquire_lock path =
  if not (Hashtbl.mem held_locks path) then
    match Results.Lockfile.acquire ~owner:"repro" path with
    | Ok l -> Hashtbl.replace held_locks path l
    | Error msg ->
        Printf.eprintf
          "repro: %s\n\
          \  (a `repro serve` daemon or another run owns this store; \
           stop it or pass a different --cache-dir)\n\
           %!"
          msg;
        exit 2

let matrix ?trace_dir ?(cache = true) ?(refresh = false) ?cache_dir ?plan
    ?seed ?replay full =
  let disk =
    if cache then begin
      let d = Results.Cache.create ?dir:cache_dir () in
      acquire_lock (Filename.concat (Results.Cache.dir d) "LOCK");
      Some d
    end
    else None
  in
  Harness.Matrix.create ~progress ?trace_dir ?disk ~refresh ?plan ?seed
    ?replay (size_of_full full)

(* Stats go to stderr: report bytes on stdout stay identical whether
   cells were computed or served from the disk cache. *)
let report_cache_stats m =
  match Harness.Matrix.disk_cache m with
  | None -> ()
  | Some disk ->
      let hits, misses = Harness.Matrix.cache_stats m in
      if hits > 0 || misses > 0 then
        Printf.eprintf "  cell cache: %d hit(s), %d miss(es) under %s\n%!"
          hits misses (Results.Cache.dir disk)

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the content-addressed cell cache: always recompute, \
           never read or write cached cells.")

let refresh_arg =
  Arg.(
    value & flag
    & info [ "refresh" ]
        ~doc:
          "Recompute every cell and overwrite its cache entry (ignore \
           cached results, still write fresh ones).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Cell cache directory (default: $(b,REPRO_CACHE_DIR) or \
           .repro-cache).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print one line to stderr per completed matrix cell (workload, \
           mode, simulated cycles, host wall ms).  Stdout is unchanged.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the global metrics registry for this run and dump its \
           snapshot (counters, gauges, histograms) as JSON on stderr at \
           the end.  Off by default; report bytes are identical either \
           way.")

(* Enable the registry up front, hand back the stderr dump to run at
   the end.  Stdout is untouched, like the cache-stats line. *)
let with_metrics metrics =
  if metrics then Obs.Metrics.set_enabled Obs.Metrics.default true;
  fun () ->
    if metrics then
      prerr_endline
        (Results.Json.to_string ~indent:true
           (Results.Trend.metrics_json
              (Obs.Metrics.snapshot Obs.Metrics.default)))

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"DIR"
        ~doc:
          "Also write per-cell trace artefacts (Chrome JSON, heap \
           time-series CSV, site tables, folded stacks, binary event \
           stream) under $(docv).  Tracing is pure observation: report \
           output is byte-identical.")

let cell_progress (t : Harness.Matrix.cell_timing) ~cycles =
  Printf.eprintf "  done %-16s %-8s %12d cycles %8.1f ms\n%!" t.workload
    t.mode cycles (t.wall_s *. 1000.)

let experiments =
  [
    ("table1", `Static (fun () -> Harness.Table1.render ()));
    ("table2", `Matrix Harness.Table23.render_table2);
    ("table3", `Matrix Harness.Table23.render_table3);
    ("fig8", `Matrix Harness.Fig8.render);
    ("fig9", `Matrix Harness.Fig9.render);
    ("fig10", `Matrix Harness.Fig10.render);
    ("fig11", `Matrix Harness.Fig11.render);
    ("ablations", `Static Harness.Ablations.render);
    ("limitation", `Static Harness.Limitation.render);
    ("claims", `Matrix Harness.Claims.render);
  ]

let run_experiment name m () =
  match List.assoc_opt name experiments with
  | None ->
      Printf.eprintf "unknown experiment %s (have: %s, all)\n" name
        (String.concat ", " (List.map fst experiments));
      exit 1
  | Some (`Static f) -> print_endline (f ())
  | Some (`Matrix f) ->
      print_endline (f m);
      report_cache_stats m

let run_all m jobs ~show_progress ?trace_dir ?resume ?timeout_s ?(retries = 0)
    ?quarantine () =
  let on_cell = if show_progress then Some cell_progress else None in
  let supervised =
    resume <> None || timeout_s <> None || retries > 0 || quarantine <> None
  in
  if supervised then begin
    Option.iter (fun j -> acquire_lock (j ^ ".lock")) resume;
    let sup =
      {
        Harness.Matrix.default_supervision with
        timeout_s;
        retries;
        journal = resume;
        quarantine;
      }
    in
    let report = Harness.Matrix.run_all_supervised ~domains:jobs ?on_cell sup m in
    if report.Harness.Matrix.resumed > 0 || report.Harness.Matrix.torn > 0 then
      Printf.eprintf
        "  resumed %d cells from the journal (%d damaged lines skipped)\n%!"
        report.Harness.Matrix.resumed report.Harness.Matrix.torn;
    (match report.Harness.Matrix.failures with
    | [] -> ()
    | failures ->
        (* Structured failure summary instead of a re-raised exception:
           the harness stays standing, reports, and exits non-zero. *)
        Printf.eprintf "experiment all: %d cell(s) FAILED\n"
          (List.length failures);
        List.iter
          (fun f -> Fmt.epr "  %a@." Harness.Matrix.pp_cell_failure f)
          failures;
        Option.iter
          (fun dir -> Printf.eprintf "  triage bundles under %s/\n" dir)
          quarantine;
        Printf.eprintf
          "  (report skipped: it would be incomplete; re-run%s after triage)\n%!"
          (match resume with
          | Some j -> Printf.sprintf " with --resume %s" j
          | None -> "");
        exit 1)
  end
  else if jobs > 1 || show_progress || trace_dir <> None then
    ignore (Harness.Matrix.run_all ~domains:jobs ?on_cell m);
  print_endline (Harness.Table1.render ());
  print_newline ();
  print_endline (Harness.Table23.render_table2 m);
  print_newline ();
  print_endline (Harness.Table23.render_table3 m);
  print_newline ();
  print_endline (Harness.Fig8.render m);
  print_endline (Harness.Fig9.render m);
  print_endline (Harness.Fig10.render m);
  print_endline (Harness.Fig11.render m);
  print_endline (Harness.Claims.render m);
  print_endline (Harness.Ablations.render ());
  print_newline ();
  print_endline (Harness.Limitation.render ());
  report_cache_stats m

let exp_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            "table1, table2, table3, fig8, fig9, fig10, fig11, ablations, \
             limitation, claims, or all")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOURNAL"
          ~doc:
            "Crash-consistent journal file ('all' only).  Completed cells \
             are fsync'd to $(docv) as they finish; re-invoking with the \
             same journal after an interruption runs only the remaining \
             cells and renders a byte-identical report.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-s" ] ~docv:"S"
          ~doc:
            "Per-cell wall-clock watchdog in seconds ('all' only).  A cell \
             exceeding it counts as a transient failure, eligible for \
             --retries.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts per cell for transient host failures \
             (timeouts, ENOSPC, OOM), with exponential backoff ('all' \
             only).  Deterministic simulator failures are never retried.")
  in
  let quarantine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:
            "Write a triage bundle (error report, heap verdicts, trace \
             artefacts of a diagnostic re-run) under $(docv) for every \
             cell that exhausts its attempts ('all' only).")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Record-once/replay-per-column: run each workload once per \
             trace variant and drive the remaining allocator columns from \
             its allocation trace.  Allocator-side measurements are \
             count-equivalent to full execution (see $(b,repro replay \
             --verify)); mutator-side cycle and stall figures are not \
             reproduced.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Run every cell under this fault plan (same clauses as \
             $(b,repro faults)).  The plan string becomes part of each \
             cell's cache address and provenance.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed (with --plan).")
  in
  let run name full jobs show_progress trace_dir resume timeout_s retries
      quarantine no_cache refresh cache_dir replay plan_spec seed metrics =
    let dump_metrics = with_metrics metrics in
    let plan =
      match plan_spec with
      | None -> None
      | Some s -> (
          match Fault.Plan.of_string ~seed s with
          | Ok p -> Some (p, s)
          | Error msg ->
              Printf.eprintf "bad --plan: %s\n" msg;
              exit 2)
    in
    if replay && plan <> None then begin
      Printf.eprintf "experiment: --replay cannot combine with --plan\n";
      exit 2
    end;
    if replay && trace_dir <> None then begin
      Printf.eprintf "experiment: --replay cannot combine with --trace\n";
      exit 2
    end;
    let m =
      matrix ?trace_dir ~cache:(not no_cache) ~refresh ?cache_dir ?plan ~seed
        ~replay full
    in
    if name = "all" then
      run_all m jobs ~show_progress ?trace_dir ?resume ?timeout_s ~retries
        ?quarantine ()
    else run_experiment name m ();
    dump_metrics ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure from the paper")
    Term.(
      const run $ name_arg $ full_arg $ jobs_arg $ progress_arg $ trace_arg
      $ resume_arg $ timeout_arg $ retries_arg $ quarantine_arg $ no_cache_arg
      $ refresh_arg $ cache_dir_arg $ replay_arg $ plan_arg $ seed_arg
      $ metrics_arg)

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"cfrac, grobner, mudlle, lcc, tile, moss, moss-slow, game, game-correlated")

let mode_conv =
  let parse s =
    match
      List.find_opt
        (fun m -> Workloads.Api.mode_name m = s)
        Workloads.Api.all_modes
    with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown mode %s (have: %s)" s
                (String.concat ", "
                   (List.map Workloads.Api.mode_name Workloads.Api.all_modes))))
  in
  let print ppf m = Fmt.string ppf (Workloads.Api.mode_name m) in
  Arg.conv (parse, print)

let run_cmd =
  let mode_arg =
    Arg.(
      value
      & opt mode_conv (Workloads.Api.Region { safe = true })
      & info [ "mode" ] ~doc:"Memory manager: sun, bsd, lea, gc, emu-*, region, unsafe.")
  in
  let run name mode full =
    let spec = Workloads.Workload.find name in
    let r = Workloads.Workload.run_collect spec mode (size_of_full full) in
    Fmt.pr "%a@." Workloads.Results.pp r
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one memory manager")
    Term.(const run $ workload_arg $ mode_arg $ full_arg)

let trace_cmd =
  let mode_pos_arg =
    Arg.(
      value
      & pos 1 mode_conv (Workloads.Api.Region { safe = true })
      & info [] ~docv:"MODE"
          ~doc:"Memory manager: sun, bsd, lea, gc, emu-*, region, unsafe.")
  in
  let out_arg =
    Arg.(
      value & opt string "traces"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory for the artefacts.")
  in
  let sample_arg =
    Arg.(
      value
      & opt int Harness.Tracefiles.default_sample_cycles
      & info [ "sample-cycles" ] ~docv:"N"
          ~doc:"Time-series sampling period in simulated cycles.")
  in
  let run name mode out sample_cycles full =
    let spec = Workloads.Workload.find name in
    let r, tracer, files =
      Harness.Tracefiles.run_traced ~sample_cycles ~out spec mode
        (size_of_full full)
    in
    Fmt.pr "%a@.@." Workloads.Results.pp r;
    print_string (Obs.Export.site_table ~top:10 tracer);
    let ring = Obs.Tracer.ring tracer in
    Printf.printf
      "\n%d events (%d sampled intervals) -> %s\n\
      \  timeline : %s  (load in Perfetto / chrome://tracing)\n\
      \  heap     : %s\n\
      \  sites    : %s\n\
      \  flame    : %s  (flamegraph.pl / inferno-flamegraph)\n\
      \  raw      : %s\n"
      (Obs.Ring.total ring)
      (Obs.Sampler.length (Obs.Tracer.sampler tracer))
      files.Harness.Tracefiles.dir files.Harness.Tracefiles.trace_json
      files.Harness.Tracefiles.heap_csv files.Harness.Tracefiles.sites_txt
      files.Harness.Tracefiles.folded files.Harness.Tracefiles.events_bin
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one workload with the observability layer enabled and write \
          its event timeline, heap time-series and per-site profile"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs a single (workload, mode) cell with tracing on and \
              leaves five artefacts under --out: a Chrome trace_event JSON \
              timeline (phases, allocations, region and GC events, counter \
              tracks), a heap/stall time-series CSV, the per-site \
              attribution table, a folded-stack file for flame graphs, and \
              the raw binary event stream.  Simulated counts are identical \
              to an untraced run: observation never perturbs measurement.";
         ])
    Term.(
      const run $ workload_arg $ mode_pos_arg $ out_arg $ sample_arg
      $ full_arg)

let list_cmd =
  let run () =
    List.iter
      (fun s ->
        Printf.printf "%-8s %s%s\n" s.Workloads.Workload.name
          s.Workloads.Workload.description
          (if s.Workloads.Workload.region_only then
             " (region-based; malloc via emulation)"
           else ""))
      (Workloads.Workload.all @ Workloads.Workload.extras)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark workloads") Term.(const run $ const ())

let creg_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"creg source file")
  in
  let unsafe_arg =
    Arg.(value & flag & info [ "unsafe" ] ~doc:"Use unsafe regions (no reference counts).")
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:"Print the compiled bytecode (with liveness maps) instead of running.")
  in
  let run file unsafe dump =
    let ic = open_in file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    if dump then begin
      match Creg.Compile.compile src with
      | prog ->
          Array.iter (fun f -> Fmt.pr "%a@." Creg.Bytecode.pp_func f) prog.Creg.Bytecode.bp_funcs
      | exception Creg.Typecheck.Error (msg, pos) ->
          Printf.eprintf "type error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
          exit 2
      | exception Creg.Parser.Error (msg, pos) ->
          Printf.eprintf "syntax error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
          exit 2
      | exception Creg.Lexer.Error (msg, pos) ->
          Printf.eprintf "lexical error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
          exit 2
    end
    else
    match Creg.Vm.run_source ~safe:(not unsafe) src with
    | outcome, lib ->
        List.iter (fun v -> Printf.printf "%d\n" v) outcome.Creg.Vm.output;
        let c = Sim.Cost.cycles (Sim.Memory.cost (Regions.Region.memory lib)) in
        Printf.eprintf "exit value: %d (%d simulated cycles)\n"
          outcome.Creg.Vm.exit_value c
    | exception Creg.Vm.Fault msg ->
        Printf.eprintf "runtime fault: %s\n" msg;
        exit 2
    | exception Creg.Typecheck.Error (msg, pos) ->
        Printf.eprintf "type error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
        exit 2
    | exception Creg.Parser.Error (msg, pos) ->
        Printf.eprintf "syntax error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
        exit 2
    | exception Creg.Lexer.Error (msg, pos) ->
        Printf.eprintf "lexical error at %d:%d: %s\n" pos.Creg.Ast.line pos.Creg.Ast.col msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "creg" ~doc:"Compile and run a creg (C@-like) program on the safe region runtime")
    Term.(const run $ file_arg $ unsafe_arg $ dump_arg)

let faults_cmd =
  let mode_pos_arg =
    Arg.(
      value
      & pos 1 mode_conv (Workloads.Api.Region { safe = true })
      & info [] ~docv:"MODE"
          ~doc:"Memory manager: sun, bsd, lea, gc, emu-*, region, unsafe.")
  in
  let plan_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Fault plan: comma-separated clauses $(b,budget=N) (page wall), \
             $(b,oom-at=N) (deny the Nth map, then recover), \
             $(b,ramp=START:SLOPE) (denial probability ramp), \
             $(b,flip=EVERY:BIT) (bit-flip corruption), or $(b,none).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Plan seed: the same --plan/--seed pair replays the same \
             injected faults exactly, on any machine.")
  in
  let all_modes_arg =
    Arg.(
      value & flag
      & info [ "all-modes" ]
          ~doc:"Run the workload's whole allocator row instead of one MODE.")
  in
  let quarantine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:"Write a triage bundle under $(docv) for non-graceful outcomes.")
  in
  let run name mode all_modes plan_spec seed full quarantine =
    let spec = Workloads.Workload.find name in
    match Fault.Plan.of_string ~seed plan_spec with
    | Error msg ->
        Printf.eprintf "bad --plan: %s\n" msg;
        exit 2
    | Ok plan ->
        let modes =
          if all_modes then Workloads.Workload.modes_for spec else [ mode ]
        in
        let graceful =
          List.map
            (fun mode ->
              let o =
                Harness.Faultrun.run ~plan spec mode (size_of_full full)
              in
              Fmt.pr "%a@.@." Harness.Faultrun.pp_outcome o;
              let ok = Harness.Faultrun.graceful o in
              if not ok then
                Option.iter
                  (fun dir ->
                    let last_error =
                      Fmt.str "%a"
                        (fun ppf (o : Harness.Faultrun.outcome) ->
                          match o.Harness.Faultrun.status with
                          | Harness.Faultrun.Crashed s -> Fmt.pf ppf "crashed: %s" s
                          | _ -> Fmt.pf ppf "heap check failed after fault plan")
                        o
                    in
                    match
                      Harness.Triage.write_bundle ~dir
                        ~workload:spec.Workloads.Workload.name
                        ~mode:(Workloads.Api.mode_name mode) ~attempts:1
                        ~last_error ~backtrace:"" ~plan
                        ~retrace:(spec, mode, size_of_full full) ()
                    with
                    | Some bundle ->
                        Printf.eprintf "  triage bundle: %s\n%!" bundle
                    | None -> ())
                  quarantine;
              ok)
            modes
        in
        if not (List.for_all Fun.id graceful) then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one workload under a deterministic fault plan and check it \
          degrades gracefully"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Installs a seed-reproducible schedule of injected failures \
              (page-budget walls, one-shot OOMs, denial-probability ramps, \
              bit-flip corruption) at the simulated machine's page-map \
              boundary, runs the workload, and reports how it degraded.  \
              Exit status is 0 iff every run was graceful: the workload \
              completed or surfaced the documented fault, and every heap \
              structure still passed its consistency walk.";
           `P
             "Denial clauses (budget/oom-at/ramp) are expected to be \
              graceful everywhere.  $(b,flip) clauses corrupt mapped heap \
              words: detecting those is the sanitizer's job ($(b,repro \
              check) and the test suite aim them at redzones); under a \
              plain workload a flip may legitimately break a heap check — \
              that non-graceful exit is the finding, not a harness bug.";
         ])
    Term.(
      const run $ workload_arg $ mode_pos_arg $ all_modes_arg $ plan_arg
      $ seed_arg $ full_arg $ quarantine_arg)

let check_cmd =
  let traces_arg =
    Arg.(
      value & opt int 200
      & info [ "traces" ] ~docv:"N"
          ~doc:"Differential traces to replay per allocator.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base RNG seed; trace $(i,k) uses SEED+$(i,k), so any failure \
             report can be replayed exactly.")
  in
  let run traces seed =
    if Check.Fuzz.main ~progress ~traces ~seed () then
      print_endline "check: all allocators clean"
    else begin
      print_endline "check: FAILED";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Sanitized differential fuzz of all five allocators"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays fixed-seed malloc/free/realloc traces against the Sun, \
              BSD, Lea, collector and region allocators, each wrapped in the \
              redzone/poison sanitizer, cross-checking contents, sizes, \
              overlap and statistics against a reference model; then injects \
              out-of-memory faults at the page-map level, and finally checks \
              that a deliberately broken allocator is caught.";
         ])
    Term.(const run $ traces_arg $ seed_arg)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let docs_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify instead of write: regenerate into memory and exit \
             non-zero with a readable diff if the committed document or the \
             golden results file disagree with fresh measurements.")
  in
  let doc_arg =
    Arg.(
      value & opt string "EXPERIMENTS.md"
      & info [ "doc" ] ~docv:"FILE"
          ~doc:"Document whose generated blocks to rewrite or check.")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"FILE"
          ~doc:
            "Machine-readable golden results (written on regeneration, \
             compared measurement-by-measurement on --check; provenance is \
             ignored, build ids legitimately differ between builds).  \
             Default: results/golden-quick.json, or \
             results/golden-full.json under --full.")
  in
  let drift_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "drift-dir" ] ~docv:"DIR"
          ~doc:
            "On --check failure, also write the regenerated document and \
             results under $(docv) so CI can upload them as an artifact.")
  in
  let run check doc golden drift_dir jobs show_progress no_cache refresh
      cache_dir full =
    let golden =
      match golden with
      | Some g -> g
      | None ->
          if full then "results/golden-full.json"
          else "results/golden-quick.json"
    in
    let m = matrix ~cache:(not no_cache) ~refresh ?cache_dir full in
    let on_cell = if show_progress then Some cell_progress else None in
    ignore (Harness.Matrix.run_all ~domains:jobs ?on_cell m);
    if full then begin
      (* The document's generated blocks are quick-run renders; at full
         size only the machine-readable store is gated (the cron CI
         job).  Rendering the doc from a full matrix would "drift" it
         by construction. *)
      let fresh = Harness.Matrix.store m in
      report_cache_stats m;
      if check then begin
        match Results.Store.load golden with
        | Error msg ->
            Printf.eprintf "docs: %s: %s\n" golden msg;
            exit 1
        | Ok expected -> (
            match Results.Store.diff ~expected ~actual:fresh with
            | [] ->
                Printf.printf "docs: %s (%d cells) is up to date\n" golden
                  (Results.Store.length fresh)
            | lines ->
                Printf.eprintf
                  "docs: committed full-size golden disagrees with \
                   regeneration:\n";
                List.iter (fun l -> Printf.eprintf "%s: %s\n" golden l) lines;
                Option.iter
                  (fun dir ->
                    mkdir_p dir;
                    let out = Filename.concat dir (Filename.basename golden) in
                    Results.Store.save fresh out;
                    Printf.eprintf "docs: regenerated copy under %s/\n" dir)
                  drift_dir;
                Printf.eprintf
                  "docs: run `repro docs --full` and commit the result\n%!";
                exit 1)
      end
      else begin
        Results.Store.save fresh golden;
        Printf.printf "docs: wrote %s (%d cells)\n" golden
          (Results.Store.length fresh)
      end;
      exit 0
    end;
    let current =
      try Harness.Docs.read_file doc
      with Sys_error msg ->
        Printf.eprintf "docs: cannot read %s: %s\n" doc msg;
        exit 2
    in
    match Harness.Docs.regenerate m current with
    | Error msg ->
        Printf.eprintf "docs: %s: %s\n" doc msg;
        exit 2
    | Ok regenerated ->
        let fresh = Harness.Matrix.store m in
        report_cache_stats m;
        let nblocks = List.length (Harness.Docs.block_ids current) in
        if check then begin
          let doc_drift =
            Harness.Docs.drift ~label:doc ~current ~regenerated
          in
          let golden_drift =
            match Results.Store.load golden with
            | Error msg -> [ Printf.sprintf "%s: %s" golden msg ]
            | Ok expected ->
                List.map
                  (fun line -> Printf.sprintf "%s: %s" golden line)
                  (Results.Store.diff ~expected ~actual:fresh)
          in
          match doc_drift @ golden_drift with
          | [] ->
              Printf.printf
                "docs: %s (%d generated blocks) and %s (%d cells) are up to \
                 date\n"
                doc nblocks golden (Results.Store.length fresh)
          | lines ->
              Printf.eprintf
                "docs: committed outputs disagree with regeneration:\n";
              List.iter (fun l -> Printf.eprintf "%s\n" l) lines;
              Option.iter
                (fun dir ->
                  mkdir_p dir;
                  let doc_out = Filename.concat dir (Filename.basename doc) in
                  let golden_out =
                    Filename.concat dir (Filename.basename golden)
                  in
                  Harness.Docs.write_file doc_out regenerated;
                  Results.Store.save fresh golden_out;
                  Printf.eprintf "docs: regenerated copies under %s/\n" dir)
                drift_dir;
              Printf.eprintf
                "docs: run `repro docs` (or dune exec repro -- docs) and \
                 commit the result\n%!";
              exit 1
        end
        else begin
          Harness.Docs.write_file doc regenerated;
          Results.Store.save fresh golden;
          Printf.printf "docs: wrote %s (%d generated blocks) and %s (%d \
                         cells)\n"
            doc nblocks golden (Results.Store.length fresh)
        end
  in
  Cmd.v
    (Cmd.info "docs"
       ~doc:
         "Regenerate (or --check) the generated numeric blocks of \
          EXPERIMENTS.md and the golden results file"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the quick evaluation matrix and rewrites every \
              $(b,<!-- generated:ID -->) block of the document from the \
              measured results, together with a machine-readable golden \
              results JSON carrying full provenance (build id, seed, fault \
              plan) per cell.  With $(b,--check), nothing is written: the \
              command exits non-zero with a line diff if the committed \
              document or golden file disagrees with fresh measurements — \
              the CI docs gate.  With $(b,--full), the full-size matrix is \
              run and only the golden store (results/golden-full.json) is \
              written or checked: the document's blocks stay quick-run \
              renders (this is the scheduled full-size CI gate).";
         ])
    Term.(
      const run $ check_arg $ doc_arg $ golden_arg $ drift_dir_arg $ jobs_arg
      $ progress_arg $ no_cache_arg $ refresh_arg $ cache_dir_arg $ full_arg)

let variant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:
          "Trace variant: $(b,malloc) (serves the direct columns), \
           $(b,emu) (emulated columns, region-only workloads) or \
           $(b,region) (safe/unsafe regions).  Default: the workload's \
           malloc-side variant.")

let default_variant (spec : Workloads.Workload.spec) = function
  | Some v -> v
  | None -> if spec.Workloads.Workload.region_only then "emu" else "malloc"

let print_trace_stats path =
  match Trace.Format.open_file path with
  | Error msg ->
      Printf.eprintf "record: wrote an unreadable trace (%s)\n" msg;
      exit 2
  | Ok rd ->
      let hdr = Trace.Format.header rd in
      Printf.printf
        "%s: %s/%s under %s (%s), %d records, %d objects, %d regions, %d \
         bytes\n"
        path hdr.Trace.Format.workload hdr.Trace.Format.variant
        hdr.Trace.Format.mode hdr.Trace.Format.size (Trace.Format.records rd)
        (Trace.Format.objects rd) (Trace.Format.regions rd)
        (Unix.stat path).Unix.st_size;
      Trace.Format.close rd

let record_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Trace file (default: WORKLOAD-VARIANT-SIZE.trace).")
  in
  let run name variant out full =
    let spec = Workloads.Workload.find name in
    let variant = default_variant spec variant in
    let size = size_of_full full in
    let out =
      match out with
      | Some p -> p
      | None ->
          Printf.sprintf "%s-%s-%s.trace" name variant
            (if full then "full" else "quick")
    in
    let r = Trace.Record.record ~out ~variant spec size in
    Printf.printf "recorded %s under %s: %s\n" name
      (Workloads.Api.mode_name (Trace.Record.recording_mode variant))
      r.Workloads.Results.summary;
    print_trace_stats out
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Record one workload's allocation trace to a file"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the workload once under the variant's recording mode \
              with a trace recorder attached and writes the compact binary \
              trace (header, operation records, sealed trailer).  \
              Recording is pure observation: the run's measurements are \
              identical to an unrecorded run.  The trace replays against \
              every allocator column its variant serves ($(b,repro \
              replay)).";
         ])
    Term.(const run $ workload_arg $ variant_arg $ out_arg $ full_arg)

let replay_cmd =
  let workload_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workload to replay (every workload under --verify).")
  in
  let mode_pos_arg =
    Arg.(
      value
      & pos 1 (some mode_conv) None
      & info [] ~docv:"MODE"
          ~doc:"Memory manager column to replay against.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Golden cross-check: for every matrix cell (of WORKLOAD, or \
             all 37), diff the replayed allocator-side measurements \
             against full execution and exit non-zero on any divergence.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:
            "Replay this previously recorded trace ($(b,repro record)) \
             instead of recording a fresh temporary one.")
  in
  let timeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"DIR"
          ~doc:
            "Attach a heap-timeline profiler to the replay and write one \
             $(b,MODE.csv) per replayed column into DIR (memory curves \
             over the allocation-event clock at bounded profiling \
             memory).  With $(b,--trace-file) and no MODE, every column \
             the trace's variant serves is replayed.")
  in
  let run workload mode verify trace_file timeline_dir metrics jobs full =
    let size = size_of_full full in
    let dump_metrics = with_metrics metrics in
    if verify then begin
      let checked, diffs =
        Harness.Replaycheck.verify ?workload ~domains:jobs ~progress size
      in
      if diffs = [] then begin
        Printf.printf
          "replay verify: %d cells, every allocator-side measurement \
           count-equivalent\n"
          checked;
        dump_metrics ()
      end
      else begin
        Printf.printf "replay verify: %d divergence(s) over %d cells:\n"
          (List.length diffs) checked;
        List.iter (fun d -> Fmt.pr "  %a@." Harness.Replaycheck.pp_diff d) diffs;
        dump_metrics ();
        exit 1
      end
    end
    else begin
      (* One replay of [path] against [mode], optionally profiled. *)
      let replay_one ?timeline path mode =
        match Trace.Format.open_file path with
        | Error msg ->
            Printf.eprintf "replay: %s: %s\n" path msg;
            exit 2
        | Ok rd ->
            Fun.protect
              ~finally:(fun () -> Trace.Format.close rd)
              (fun () -> Trace.Replay.run ?timeline rd mode)
      in
      let write_timeline dir mode tl =
        Harness.Tracefiles.mkdir_p dir;
        let out =
          Filename.concat dir (Workloads.Api.mode_name mode ^ ".csv")
        in
        Obs.Timeline.write_csv tl out;
        Printf.printf "timeline: %s (%d samples @ every %d events)\n" out
          (Obs.Timeline.length tl)
          (Obs.Timeline.interval tl)
      in
      (match mode with
      | Some mode ->
          let path, cleanup =
            match trace_file with
            | Some p -> (p, fun () -> ())
            | None ->
                let workload =
                  match workload with
                  | Some w -> w
                  | None ->
                      Printf.eprintf
                        "replay: WORKLOAD is required without --trace-file\n";
                      exit 2
                in
                let spec = Workloads.Workload.find workload in
                let tmp = Filename.temp_file "repro-replay" ".trace" in
                progress
                  (Printf.sprintf "recording %s (%s trace) ..." workload
                     (Trace.Record.variant_of_mode mode));
                ignore
                  (Trace.Record.record ~out:tmp
                     ~variant:(Trace.Record.variant_of_mode mode) spec size);
                (tmp, fun () -> try Sys.remove tmp with Sys_error _ -> ())
          in
          Fun.protect ~finally:cleanup (fun () ->
              let timeline =
                Option.map (fun _ -> Obs.Timeline.create ()) timeline_dir
              in
              let r = replay_one ?timeline path mode in
              (match (timeline_dir, timeline) with
              | Some dir, Some tl -> write_timeline dir mode tl
              | _ -> ());
              Fmt.pr "%a@." Workloads.Results.pp r)
      | None -> (
          (* No MODE: profile every column the trace's variant serves —
             only meaningful for a pre-recorded trace with --timeline. *)
          match (trace_file, timeline_dir) with
          | Some path, Some dir ->
              let variant =
                match Trace.Format.open_file path with
                | Error msg ->
                    Printf.eprintf "replay: %s: %s\n" path msg;
                    exit 2
                | Ok rd ->
                    Fun.protect
                      ~finally:(fun () -> Trace.Format.close rd)
                      (fun () -> (Trace.Format.header rd).Trace.Format.variant)
              in
              let modes =
                List.filter
                  (fun m -> Trace.Record.variant_of_mode m = variant)
                  Workloads.Api.all_modes
              in
              List.iter
                (fun mode ->
                  let tl = Obs.Timeline.create () in
                  let r = replay_one ~timeline:tl path mode in
                  Printf.printf "%-16s %s\n"
                    (Workloads.Api.mode_name mode)
                    r.Workloads.Results.summary;
                  write_timeline dir mode tl)
                modes
          | _ ->
              Printf.eprintf
                "replay: MODE is required without --verify (pass \
                 --trace-file FILE --timeline DIR to profile every column \
                 the trace serves)\n";
              exit 2));
      dump_metrics ()
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a recorded allocation trace against an allocator column"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Drives the requested memory manager from a workload's \
              recorded allocation trace, skipping the mutator compute that \
              produced it.  Allocator-side measurements (allocation, \
              refcount, stack-scan and cleanup instructions, OS bytes, \
              requested stats, region summaries) are count-equivalent to \
              full execution; mutator-side cycles and stalls are not \
              reproduced.  $(b,--verify) proves the equivalence \
              empirically, cell by cell.  $(b,--timeline DIR) attaches \
              the bounded-memory heap profiler and writes one CSV per \
              replayed column; $(b,--metrics) enables the global metrics \
              registry and dumps its snapshot as JSON on stderr.";
         ])
    Term.(
      const run $ workload_opt_arg $ mode_pos_arg $ verify_arg
      $ trace_file_arg $ timeline_arg $ metrics_arg $ jobs_arg $ full_arg)

let gen_cmd =
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            "Full generator spec as one comma-separated $(b,key=value) \
             string (the canonical form printed in the trace header).  \
             Individual knobs below override its fields.")
  in
  let objects_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "objects" ] ~docv:"N"
          ~doc:"Total objects allocated over the trace (default 1000000).")
  in
  let gvariant_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "variant" ] ~docv:"VARIANT"
          ~doc:
            "$(b,malloc) (serves the heap columns: sun/bsd/lea/gc) or \
             $(b,region) (safe/unsafe regions).  Default: malloc.")
  in
  let size_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "size" ] ~docv:"DIST"
          ~doc:
            "Object size distribution: $(b,table2), $(b,uniform:LO:HI) or \
             $(b,heavy:LO:CAP).  Default: table2.")
  in
  let life_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "life" ] ~docv:"DIST"
          ~doc:
            "Lifetime distribution: $(b,lifo:BATCH) (region-friendly), \
             $(b,exp:MEAN) or $(b,long:PCT:MEAN) (PCT% immortal).  \
             Default: lifo:256.")
  in
  let stores_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stores" ] ~docv:"K"
          ~doc:"Pointer stores emitted per allocation (default 1).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed (default 1).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the trace here unconditionally.  Default: the \
             content-addressed cache slot, reused if already generated.")
  in
  let run spec objects variant size life stores seed out cache_dir =
    let p =
      match spec with
      | None -> Trace.Gen.default
      | Some s -> (
          match Trace.Gen.of_string s with
          | Ok p -> p
          | Error msg ->
              Printf.eprintf "gen: bad --spec: %s\n" msg;
              exit 2)
    in
    let field name conv v cur =
      match v with
      | None -> cur
      | Some s -> (
          match conv s with
          | Ok x -> x
          | Error msg ->
              Printf.eprintf "gen: bad --%s: %s\n" name msg;
              exit 2)
    in
    let p =
      {
        Trace.Gen.objects =
          (match objects with None -> p.Trace.Gen.objects | Some n -> n);
        variant =
          (match variant with None -> p.Trace.Gen.variant | Some v -> v);
        sizes =
          field "size"
            (fun s ->
              Result.map
                (fun (g : Trace.Gen.t) -> g.Trace.Gen.sizes)
                (Trace.Gen.of_string ("size=" ^ s)))
            size p.Trace.Gen.sizes;
        lifetime =
          field "life"
            (fun s ->
              Result.map
                (fun (g : Trace.Gen.t) -> g.Trace.Gen.lifetime)
                (Trace.Gen.of_string ("life=" ^ s)))
            life p.Trace.Gen.lifetime;
        stores =
          (match stores with None -> p.Trace.Gen.stores | Some k -> k);
        seed = (match seed with None -> p.Trace.Gen.seed | Some s -> s);
      }
    in
    (* Re-validate the assembled params through the canonical parser so
       knob combinations get the same checks as --spec. *)
    let p =
      match Trace.Gen.of_string (Trace.Gen.to_string p) with
      | Ok p -> p
      | Error msg ->
          Printf.eprintf "gen: %s\n" msg;
          exit 2
    in
    let path =
      match out with
      | Some out ->
          progress (Printf.sprintf "generating %s ..." (Trace.Gen.to_string p));
          Trace.Gen.generate ~out p;
          out
      | None ->
          let cache = Results.Cache.create ?dir:cache_dir () in
          Trace.Gen.ensure ~cache ~progress p
    in
    print_trace_stats path
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a synthetic allocation trace from a distribution spec"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Emits a valid binary trace directly from parameterised size \
              and lifetime distributions — no workload execution — so the \
              replay columns ($(b,repro replay --trace-file)) can be \
              driven at object counts the full matrix cannot reach.  \
              Generation is deterministic: the same spec yields \
              byte-identical traces on every host, so by default the \
              trace lands in the content-addressed cache and is reused.  \
              Generated traces mark their trailer with the recycled-ids \
              flag; replay memory then scales with the peak $(i,live) \
              object count, not the trace length.";
         ])
    Term.(
      const run $ spec_arg $ objects_arg $ gvariant_arg $ size_arg $ life_arg
      $ stores_arg $ seed_arg $ out_arg $ cache_dir_arg)

let results_cmd =
  let a_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"A" ~doc:"Left-hand results store or bench JSON.")
  in
  let b_arg =
    Arg.(
      required
      & pos 2 (some file) None
      & info [] ~docv:"B" ~doc:"Right-hand results store or bench JSON.")
  in
  let sub_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("compare", `Compare) ])) None
      & info [] ~docv:"compare" ~doc:"Subcommand (only $(b,compare)).")
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let run `Compare a b =
    match (Results.Store.load a, Results.Store.load b) with
    | Ok ea, Ok eb -> (
        match Results.Store.diff ~expected:ea ~actual:eb with
        | [] ->
            Printf.printf
              "results compare: %s and %s agree on every measurement (%d \
               cells)\n"
              a b (Results.Store.length ea)
        | lines ->
            Printf.printf "results compare: %d difference(s):\n"
              (List.length lines);
            List.iter (fun l -> Printf.printf "  %s\n" l) lines;
            exit 1)
    | ra, rb -> (
        (* Not (both) results stores: fall back to a structural JSON
           diff, pruning volatile keys — this is how two bench records
           (BENCH_N.json) are compared. *)
        let parse path = function
          | Ok _ -> (
              match Results.Json.of_string (read_file path) with
              | Ok j -> j
              | Error msg ->
                  Printf.eprintf "results compare: %s: %s\n" path msg;
                  exit 2)
          | Error _ -> (
              match Results.Json.of_string (read_file path) with
              | Ok j -> j
              | Error msg ->
                  Printf.eprintf "results compare: %s: %s\n" path msg;
                  exit 2)
        in
        let ja = parse a ra and jb = parse b rb in
        match Results.Json.diff ~ignore_keys:Results.Volatile.keys ja jb with
        | [] ->
            Printf.printf
              "results compare: %s and %s agree (volatile keys ignored)\n" a b
        | diffs ->
            Printf.printf "results compare: %d difference(s):\n"
              (List.length diffs);
            List.iter
              (fun (path, va, vb) ->
                Printf.printf "  %s: %s vs %s\n" path va vb)
              diffs;
            exit 1)
  in
  Cmd.v
    (Cmd.info "results"
       ~doc:"Compare two results stores or bench records"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "$(b,repro results compare A B) diffs two machine-readable \
              result files.  Results stores (golden-quick.json and \
              friends) are compared measurement-by-measurement with \
              provenance ignored; anything else is parsed as JSON (bench \
              records) and compared structurally with volatile keys — \
              provenance, timestamps, host wall-clocks — pruned.  Exit \
              status 0 iff they agree.";
         ])
    Term.(const run $ sub_arg $ a_arg $ b_arg)

let perf_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Regression gate: exit non-zero if any tracked metric \
             degraded beyond the threshold between the two newest bench \
             records carrying it.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Relative degradation that trips $(b,--check) (default 0.5, \
             i.e. 50%: bench records come from whatever host ran them, \
             so the default only catches regressions far outside host \
             noise).")
  in
  let dir_arg =
    Arg.(
      value & opt dir "."
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Directory holding the BENCH_N.json records (default: .).")
  in
  let run check threshold dir =
    match Results.Trend.load_dir dir with
    | Error msg ->
        Printf.eprintf "perf: %s\n" msg;
        exit 2
    | Ok [] ->
        Printf.eprintf "perf: no BENCH_<N>.json records under %s\n" dir;
        exit 2
    | Ok points ->
        if check then (
          match Results.Trend.check ~threshold points with
          | [] ->
              Printf.printf
                "perf check: %d bench record(s), %d tracked metric(s), no \
                 regression beyond %.0f%%\n"
                (List.length points)
                (List.length Results.Trend.tracked)
                (threshold *. 100.)
          | regs ->
              Printf.printf "perf check: %d regression(s) beyond %.0f%%:\n"
                (List.length regs) (threshold *. 100.);
              List.iter
                (fun (r : Results.Trend.regression) ->
                  let pv, pf = r.r_prev and lv, lf = r.r_last in
                  Printf.printf "  %s: %g (%s) -> %g (%s), %+.0f%%\n"
                    r.r_metric pv pf lv lf (r.r_change *. 100.))
                regs;
              exit 1)
        else print_string (Results.Trend.table points)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Cross-run performance trend over the committed bench records"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Parses every committed $(b,BENCH_N.json) (all schema \
              generations) into one timeseries and renders the metric \
              trend table — the same render that sits behind the \
              $(b,perftrend) block of EXPERIMENTS.md.  With $(b,--check), \
              acts as the CI regression gate over the tracked metrics \
              (quick-report wall clock, replay geomean speedup, gen-replay \
              peak RSS): for each, the two newest records carrying it are \
              compared and a degradation beyond $(b,--threshold) fails \
              the run.";
         ])
    Term.(const run $ check_arg $ threshold_arg $ dir_arg)

(* ------------------------------------------------------------------ *)
(* serve / serveload *)

let socket_arg ~default =
  Arg.(
    value & opt string default
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path (keep it short: the OS caps \
           socket paths at ~100 bytes, so /tmp beats deep build \
           trees).")

let serve_cmd =
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains running cold cells.")
  in
  let max_clients_arg =
    Arg.(
      value & opt int 512
      & info [ "max-clients" ] ~docv:"N"
          ~doc:
            "Concurrent connections; beyond this, new connections get \
             one Overloaded frame and a close.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound on distinct in-flight cold cells; beyond \
             this a cold request is answered Overloaded immediately.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) (Some 60.)
      & info [ "timeout-s" ] ~docv:"S"
          ~doc:
            "Per-attempt cell watchdog (a request deadline caps it \
             further).  0 disables.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts per cold cell for transient failures, with \
             exponential backoff.")
  in
  let write_timeout_arg =
    Arg.(
      value & opt float 10.
      & info [ "write-timeout-s" ] ~docv:"S"
          ~doc:
            "Drop a client that accepts no response bytes for this \
             long (slow-client protection).")
  in
  let cache_max_mb_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Size-cap the cell cache: periodic sweeps evict \
             least-recently-served entries (mtime LRU) until under the \
             cap.")
  in
  let journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Keyed crash-consistent journal (default: \
             $(b,<cache-dir>/serve.journal)).  Recovered into the cache \
             on startup.")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "drain-timeout-s" ] ~docv:"S"
          ~doc:
            "Hard bound on the SIGTERM graceful drain: cell attempts \
             still in flight at the deadline are abandoned (their \
             waiters get Failed) rather than awaited.")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"PATH"
          ~doc:"Write the final metrics snapshot (JSON) here on exit.")
  in
  let run socket cache_dir journal workers max_clients max_queue timeout_s
      retries write_timeout_s cache_max_mb drain_timeout_s metrics_out =
    let cache_dir =
      match cache_dir with Some d -> d | None -> Results.Cache.default_dir ()
    in
    let journal =
      match journal with
      | Some j -> j
      | None -> Filename.concat cache_dir "serve.journal"
    in
    let cfg =
      {
        (Serve.Daemon.default_config ~socket ~cache_dir ~journal) with
        Serve.Daemon.workers;
        max_clients;
        max_queue;
        cell_timeout_s =
          (match timeout_s with Some t when t > 0. -> Some t | _ -> None);
        retries;
        write_timeout_s;
        cache_max_mb;
        drain_timeout_s;
        metrics_out;
        log = (fun s -> Printf.eprintf "serve: %s\n%!" s);
      }
    in
    match Serve.Daemon.run cfg with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Crash-safe concurrent cell daemon over a Unix-domain socket"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Accepts (workload, mode, size, seed, fault-plan) cell \
              requests over a length-prefixed framed protocol, dedupes \
              identical in-flight requests, serves warm cells at O(read) \
              from the content-addressed cache, and runs cold cells on a \
              worker-domain pool under the batch harness's supervision \
              (watchdog, transient-only retries, fsync'd journal).  \
              kill -9 at any instant loses nothing durable: a restart \
              recovers journaled cells byte-identically.  SIGTERM drains \
              gracefully.  The cache directory and journal are held \
              under advisory locks; concurrent $(b,repro experiment) \
              runs on the same store fail fast with a diagnostic.";
         ])
    Term.(
      const run $ socket_arg ~default:"/tmp/repro-serve.sock" $ cache_dir_arg
      $ journal_arg $ workers_arg $ max_clients_arg $ max_queue_arg
      $ timeout_arg $ retries_arg $ write_timeout_arg $ cache_max_mb_arg
      $ drain_timeout_arg $ metrics_out_arg)

let serveload_cmd =
  let clients_arg =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Concurrent synthetic clients (OS threads); total requests \
             ride through them.")
  in
  let requests_arg =
    Arg.(
      value & opt int 500
      & info [ "requests" ] ~docv:"N"
          ~doc:"Total request slots (ignored with --duration-s).")
  in
  let duration_arg =
    Arg.(
      value & opt float 0.
      & info [ "duration-s" ] ~docv:"S"
          ~doc:"Soak mode: run for this long instead of a fixed count.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Chaos seed: request mix, garbage frames, disconnects and \
             their timing all derive from it.")
  in
  let kill_arg =
    Arg.(
      value & opt_all float []
      & info [ "kill" ] ~docv:"T"
          ~doc:
            "kill -9 the daemon T seconds into the run and restart it \
             (repeatable).")
  in
  let p_garbage_arg =
    Arg.(
      value & opt float 0.03
      & info [ "p-garbage" ] ~docv:"P"
          ~doc:"Per-slot probability of sending an unframeable frame.")
  in
  let p_disconnect_arg =
    Arg.(
      value & opt float 0.03
      & info [ "p-disconnect" ] ~docv:"P"
          ~doc:"Per-slot probability of hanging up mid-frame.")
  in
  let budget_arg =
    Arg.(
      value & opt float 60.
      & info [ "budget-s" ] ~docv:"S"
          ~doc:
            "Per-request resolve budget; a slot still unresolved past \
             it counts as a hung client and fails the run.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-s" ] ~docv:"S"
          ~doc:"deadline_s field sent with every request.")
  in
  let workloads_mix_arg =
    Arg.(
      value & opt string "cfrac"
      & info [ "workloads" ] ~docv:"CSV"
          ~doc:"Workloads in the request mix.")
  in
  let modes_mix_arg =
    Arg.(
      value & opt string "sun,gc,region"
      & info [ "modes" ] ~docv:"CSV" ~doc:"Modes in the request mix.")
  in
  let mix_plan_arg =
    Arg.(
      value & opt (some string) None
      & info [ "mix-plan" ] ~docv:"SPEC"
          ~doc:
            "Also include every mix cell under this fault plan (e.g. a \
             denial ramp $(b,ramp=0:0.002)) — fault-plan cells must \
             resolve like any other.")
  in
  let bench_arg =
    Arg.(
      value & opt (some string) None
      & info [ "bench" ] ~docv:"PATH"
          ~doc:
            "Write the run as a bench-schema-v6 record (the BENCH_5.json \
             behind the $(b,serveload) docs block).")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Daemon worker domains.")
  in
  let cache_max_mb_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB" ~doc:"Daemon cache size cap.")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"PATH"
          ~doc:"Daemon metrics snapshot file (written on daemon exit).")
  in
  let run socket cache_dir clients requests duration_s seed kills p_garbage
      p_disconnect budget_s deadline_s workloads_csv modes_csv mix_plan bench
      workers cache_max_mb metrics_out =
    let cache_dir =
      match cache_dir with
      | Some d -> d
      | None ->
          let d =
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "repro-serveload-%d" (Unix.getpid ()))
          in
          (try Unix.mkdir d 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          d
    in
    let socket =
      if socket <> "" then socket
      else
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "repro-serveload-%d.sock" (Unix.getpid ()))
    in
    let split csv =
      String.split_on_char ',' csv
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let mix =
      let plain =
        List.concat_map
          (fun w ->
            List.map
              (fun m ->
                Serve.Protocol.request ~seed ~workload:w ~mode:m ~size:"quick"
                  ())
              (split modes_csv))
          (split workloads_csv)
      in
      match mix_plan with
      | None -> plain
      | Some p ->
          plain
          @ List.map (fun (r : Serve.Protocol.request) -> { r with plan = p })
              plain
    in
    let journal = Filename.concat cache_dir "serve.journal" in
    let spawn () =
      let args =
        [
          Sys.executable_name; "serve"; "--socket"; socket; "--cache-dir";
          cache_dir; "--journal"; journal; "--workers"; string_of_int workers;
        ]
        @ (match cache_max_mb with
          | Some mb -> [ "--cache-max-mb"; string_of_int mb ]
          | None -> [])
        @
        match metrics_out with
        | Some p -> [ "--metrics-out"; p ]
        | None -> []
      in
      Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
        Unix.stdout Unix.stderr
    in
    let cfg =
      {
        Serve.Load.socket;
        spawn;
        concurrency = clients;
        requests;
        duration_s;
        seed;
        chaos = { Serve.Load.p_garbage; p_disconnect };
        kills;
        request_budget_s = budget_s;
        deadline_s;
        mix;
        log = (fun s -> Printf.eprintf "serveload: %s\n%!" s);
      }
    in
    let r = Serve.Load.run cfg in
    let p50 = Serve.Load.percentile r.Serve.Load.warm_us 50. in
    let p99 = Serve.Load.percentile r.Serve.Load.warm_us 99. in
    Printf.printf
      "serveload: %d slots in %.2fs (%.1f req/s resolved)\n\
      \  warm %d (p50 %dus, p99 %dus)  cold %d  overloaded %d  deadline \
       %d\n\
      \  chaos %d  bad %d  failed %d  hung %d  divergent %d\n\
      \  daemon: %d restart(s), exit %d\n"
      r.Serve.Load.total r.Serve.Load.wall_s
      (Serve.Load.throughput_rps r)
      r.Serve.Load.ok_warm p50 p99 r.Serve.Load.ok_cold
      r.Serve.Load.overloaded r.Serve.Load.deadline r.Serve.Load.chaos
      r.Serve.Load.bad r.Serve.Load.failed r.Serve.Load.unresolved
      r.Serve.Load.divergent r.Serve.Load.restarts r.Serve.Load.daemon_exit;
    Option.iter
      (fun path ->
        Harness.Serveload.write ~path
          {
            Harness.Serveload.duration_s = r.Serve.Load.wall_s;
            concurrency = clients;
            restarts = r.Serve.Load.restarts;
            total = r.Serve.Load.total;
            ok_warm = r.Serve.Load.ok_warm;
            ok_cold = r.Serve.Load.ok_cold;
            overloaded = r.Serve.Load.overloaded;
            deadline = r.Serve.Load.deadline;
            bad = r.Serve.Load.bad;
            failed = r.Serve.Load.failed;
            chaos = r.Serve.Load.chaos;
            unresolved = r.Serve.Load.unresolved;
            throughput_rps = Serve.Load.throughput_rps r;
            warm_p50_us = p50;
            warm_p99_us = p99;
          };
        Printf.eprintf "serveload: wrote %s\n%!" path)
      bench;
    if
      r.Serve.Load.unresolved > 0
      || r.Serve.Load.divergent > 0
      || r.Serve.Load.daemon_exit <> 0
    then begin
      Printf.eprintf
        "serveload: FAILED (%d hung, %d divergent, daemon exit %d)\n"
        r.Serve.Load.unresolved r.Serve.Load.divergent
        r.Serve.Load.daemon_exit;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serveload"
       ~doc:"Deterministic multi-client chaos load harness for repro serve"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Spawns a $(b,repro serve) daemon, then drives it with a \
              seeded fleet of concurrent clients mixing honest cell \
              requests with garbage frames, mid-frame disconnects and \
              scheduled kill -9/restart cycles.  The acceptance bar is \
              zero hung clients: every slot must resolve (cell, \
              Overloaded, deadline, or intentional chaos) within its \
              budget, cells served twice must be byte-identical, and \
              the daemon must drain cleanly at the end.  $(b,--bench) \
              records throughput and warm-hit latency percentiles in \
              the bench-v6 schema.";
         ])
    Term.(
      const run $ socket_arg ~default:"" $ cache_dir_arg $ clients_arg
      $ requests_arg $ duration_arg $ seed_arg $ kill_arg $ p_garbage_arg
      $ p_disconnect_arg $ budget_arg $ deadline_arg $ workloads_mix_arg
      $ modes_mix_arg $ mix_plan_arg $ bench_arg $ workers_arg
      $ cache_max_mb_arg $ metrics_out_arg)

let server_cmd =
  let mutators_arg =
    Arg.(
      value & opt int 4
      & info [ "mutators" ] ~docv:"N"
          ~doc:
            "Concurrent mutators time-sliced over the one simulated \
             machine by the deterministic quantum scheduler.")
  in
  let requests_arg =
    Arg.(
      value & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Total requests across all mutators (default: the \
             server-N matrix cell's scaled count).")
  in
  let quantum_arg =
    Arg.(
      value & opt (some int) None
      & info [ "quantum" ] ~docv:"STEPS"
          ~doc:
            "Scheduler base steps per turn; each turn's actual length \
             adds seeded jitter so handoffs don't phase-lock with \
             request boundaries.")
  in
  let seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Determinism root: request shapes and the interleaving are \
             a pure function of (seed, quantum, mutators).")
  in
  let no_bump_arg =
    Arg.(
      value & flag
      & info [ "no-bump" ]
          ~doc:
            "Allocate through the legacy region path instead of the \
             per-mutator bump-pointer fast path (addresses are \
             identical either way; only charged instructions differ).")
  in
  let mode_arg =
    Arg.(
      value
      & opt mode_conv (Workloads.Api.Region { safe = true })
      & info [ "mode" ]
          ~doc:"Memory manager: sun, bsd, lea, gc, emu-*, region, unsafe.")
  in
  let bench_arg =
    Arg.(
      value & opt (some string) None
      & info [ "bench" ] ~docv:"PATH"
          ~doc:
            "Bench mode: run the scenario twice (bump off, then on), \
             check address identity, time both legs, and write a \
             bench-schema-v7 record (the BENCH_6.json behind the \
             $(b,bumppath) docs block).  Other flags except \
             $(b,--mutators) and $(b,--requests) are ignored.")
  in
  let run mutators requests quantum seed no_bump mode full metrics bench =
    let dump_metrics = with_metrics metrics in
    match bench with
    | Some path ->
        let r = Harness.Bumppath.bench ~mutators ?requests () in
        Harness.Bumppath.write ~path r;
        Printf.printf
          "bumppath bench: %d mutators, %d requests, %d allocs\n\
          \  sim: %.1f -> %.1f alloc instrs/alloc (%.2fx), hit rate \
           %.1f%%, %d refills (%d contended)\n\
          \  host: %.1f -> %.1f ns/alloc, %.2fM allocs/s\n\
           wrote %s\n"
          r.Harness.Bumppath.mutators r.Harness.Bumppath.requests
          r.Harness.Bumppath.allocs
          r.Harness.Bumppath.sim_instrs_per_alloc_legacy
          r.Harness.Bumppath.sim_instrs_per_alloc_bump
          r.Harness.Bumppath.sim_speedup
          (100.0 *. r.Harness.Bumppath.hit_rate)
          r.Harness.Bumppath.refills r.Harness.Bumppath.contended_refills
          r.Harness.Bumppath.ns_per_alloc_legacy
          r.Harness.Bumppath.ns_per_alloc_bump
          (r.Harness.Bumppath.allocs_per_s /. 1e6)
          path;
        dump_metrics ()
    | None ->
        let base =
          Workloads.Workload.server_params mutators (size_of_full full)
        in
        let params =
          {
            base with
            Workloads.Server.requests =
              Option.value ~default:base.Workloads.Server.requests requests;
            quantum = Option.value ~default:base.Workloads.Server.quantum quantum;
            seed = Option.value ~default:base.Workloads.Server.seed seed;
            bump = not no_bump;
          }
        in
        let api = Workloads.Api.create ~with_cache:true mode in
        let o =
          Workloads.Server.run
            ?metrics:(if metrics then Some Obs.Metrics.default else None)
            api params
        in
        let r =
          Workloads.Results.collect api
            ~workload:(Printf.sprintf "server-%d" mutators)
            ~summary:
              (Printf.sprintf "served=%d checksum=%x" o.Workloads.Server.served
                 o.Workloads.Server.checksum)
        in
        Printf.printf
          "server: %d mutators, quantum %d, seed %d, %s%s\n\
           served %d  allocs %d (%d KB)  checksum %x\n\
           handoffs %d  interleave %08x\n\
           bump: %d hits, %d opens, %d closes, %d refills (%d contended)\n"
          params.Workloads.Server.mutators params.Workloads.Server.quantum
          params.Workloads.Server.seed
          (Workloads.Api.mode_name mode)
          (if no_bump then " (bump off)" else "")
          o.Workloads.Server.served o.Workloads.Server.allocs
          (o.Workloads.Server.bytes / 1024)
          o.Workloads.Server.checksum o.Workloads.Server.handoffs
          (o.Workloads.Server.interleave_hash land 0xffffffff)
          o.Workloads.Server.bump_stats.Regions.Region.bs_hits
          o.Workloads.Server.bump_stats.Regions.Region.bs_opens
          o.Workloads.Server.bump_stats.Regions.Region.bs_closes
          o.Workloads.Server.bump_stats.Regions.Region.bs_refills
          o.Workloads.Server.bump_stats.Regions.Region.bs_contended_refills;
        Printf.printf "per-mutator: served/allocs/steps/quanta/peak-live-KB\n";
        Array.iteri
          (fun i ms ->
            Printf.printf "  m%d: %d / %d / %d / %d / %d\n" i
              ms.Workloads.Server.ms_served ms.Workloads.Server.ms_allocs
              ms.Workloads.Server.ms_steps ms.Workloads.Server.ms_quanta
              (ms.Workloads.Server.ms_peak_live_bytes / 1024))
          o.Workloads.Server.per_mutator;
        Fmt.pr "%a@." Workloads.Results.pp r;
        dump_metrics ()
  in
  Cmd.v
    (Cmd.info "server"
       ~doc:"Run the multi-mutator server scenario (or its bump-path bench)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "N mutators interleave over the simulated machine under a \
              deterministic weighted round-robin quantum schedule, each \
              serving a request stream with a per-request region \
              lifecycle.  Region modes allocate through the per-mutator \
              bump-pointer fast path unless $(b,--no-bump); allocation \
              addresses are identical either way, so the flag isolates \
              the charged-instruction saving.  $(b,--bench) times both \
              paths on the host and writes the record behind the \
              $(b,bumppath) docs block.";
         ])
    Term.(
      const run $ mutators_arg $ requests_arg $ quantum_arg $ seed_arg
      $ no_bump_arg $ mode_arg $ full_arg $ metrics_arg $ bench_arg)

let main =
  Cmd.group
    (Cmd.info "repro" ~version:"1.0"
       ~doc:
         "Reproduction of Gay & Aiken, 'Memory Management with Explicit \
          Regions' (PLDI 1998)")
    [
      exp_cmd; run_cmd; trace_cmd; list_cmd; creg_cmd; check_cmd; faults_cmd;
      docs_cmd; record_cmd; replay_cmd; gen_cmd; results_cmd; perf_cmd;
      serve_cmd; serveload_cmd; server_cmd;
    ]

let () = exit (Cmd.eval main)
