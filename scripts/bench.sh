#!/usr/bin/env bash
# Regenerate BENCH_<n>.json (default BENCH_1.json) so the performance
# trajectory stays comparable across PRs:
#
#   scripts/bench.sh [n]
#
# Environment:
#   JOBS=N   domains for the parallel matrix fill (default 4)
#   FULL=1   use the full-size benchmark inputs
#
# The run also times a sequential (-j1) matrix fill, so the JSON
# records the parallel speedup on this host alongside per-cell wall
# clock and the Bechamel micro-benchmarks.
#
# Benchmarks measure; they do not verify.  Run scripts/check.sh (the
# sanitizer + differential fuzz gate) before trusting new numbers.
set -euo pipefail
cd "$(dirname "$0")/.."
n=${1:-1}
jobs=${JOBS:-4}
dune build bench/main.exe
exec dune exec --no-build bench/main.exe -- \
  --json "BENCH_${n}.json" -j "$jobs" ${FULL:+--full}
