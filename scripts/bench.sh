#!/usr/bin/env bash
# Regenerate BENCH_<n>.json (default BENCH_1.json) so the performance
# trajectory stays comparable across PRs.
#
# The run also times a sequential (-j1) matrix fill, so the JSON
# records the parallel speedup on this host alongside per-cell wall
# clock, the tracing-overhead cells, and the Bechamel
# micro-benchmarks.
#
# Benchmarks measure; they do not verify.  Run scripts/check.sh (the
# sanitizer + differential fuzz gate) before trusting new numbers.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/bench.sh [-h] [n]

  n        suffix of the output file, BENCH_<n>.json (default 1)

Environment:
  JOBS=N   domains for the parallel matrix fill (default 4)
  FULL=1   use the full-size benchmark inputs
  GEN=1    also run the generated-trace scaling columns (--gen):
           replay synthetic 1M/10M/50M-object traces against every
           allocator column in fresh child processes, recording
           throughput and peak RSS (the bounded-memory evidence in
           the JSON's "gen_replay" section; adds several minutes)
EOF
}

case "${1:-}" in
-h | --help)
  usage
  exit 0
  ;;
esac

if ! command -v dune >/dev/null 2>&1; then
  echo "scripts/bench.sh: error: 'dune' not found on PATH." >&2
  echo "Install the OCaml toolchain (e.g. 'opam install dune') or run" >&2
  echo "inside an opam environment: 'opam exec -- scripts/bench.sh'." >&2
  exit 127
fi

cd "$(dirname "$0")/.."
n=${1:-1}
jobs=${JOBS:-4}
dune build bench/main.exe
# --no-cache: trajectory numbers must be cold-run wall clocks, not
# cell-cache hits.
exec dune exec --no-build bench/main.exe -- \
  --json "BENCH_${n}.json" -j "$jobs" --no-cache ${FULL:+--full} ${GEN:+--gen}
