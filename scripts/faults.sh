#!/usr/bin/env bash
# Resilience gate: build, then run the deterministic fault-injection
# smoke — every allocator column of a malloc workload and a region
# workload under page-budget walls, one-shot OOMs and denial ramps.
# Exit status is 0 iff every cell degraded gracefully (the documented
# fault surfaced, every heap check passed).
#
# Any failing cell prints its outcome report; add --quarantine DIR to
# keep a triage bundle (error report, heap verdicts, trace artefacts).
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/faults.sh [workload [mode]] [faults options]

  scripts/faults.sh                     # fixed-seed smoke (dune @faults)
  scripts/faults.sh cfrac sun --plan budget=8 --seed 1
  scripts/faults.sh moss --all-modes --plan 'budget=24,ramp=0:0.01' \
      --quarantine _quarantine          # triage bundles on failure

With no arguments, runs the fixed-seed `dune build @faults` smoke.
Otherwise arguments go straight to `repro faults`; the same
--plan/--seed pair replays the same injected faults exactly.
EOF
}

case "${1:-}" in
-h | --help)
  usage
  exit 0
  ;;
esac

if ! command -v dune >/dev/null 2>&1; then
  echo "scripts/faults.sh: error: 'dune' not found on PATH." >&2
  echo "Install the OCaml toolchain (e.g. 'opam install dune') or run" >&2
  echo "inside an opam environment: 'opam exec -- scripts/faults.sh'." >&2
  exit 127
fi

cd "$(dirname "$0")/.."
dune build
if [ "$#" -eq 0 ]; then
  exec dune build @faults
fi
exec dune exec --no-build bin/main.exe -- faults "$@"
