#!/usr/bin/env bash
# Daemon chaos gate: build, then drive a `repro serve` daemon with the
# deterministic multi-client chaos harness — garbage frames, mid-frame
# disconnects, and kill -9/restart cycles mid-run.  Exit status is 0
# iff every client slot resolved within its budget (zero hung
# clients), every cell served twice was byte-identical, and the daemon
# drained cleanly at the end.
#
# The same --seed replays the same request mix, the same chaos draws
# and the same kill schedule exactly.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/serve.sh [serveload options]

  scripts/serve.sh                      # fixed-seed smoke (dune @serve)
  scripts/serve.sh --requests 500 --clients 32 --kill 0.2 --seed 9
  scripts/serve.sh --duration-s 60 --clients 64 --kill 10 --kill 30 \
      --mix-plan 'budget=64,ramp=0:0.002' --bench BENCH_5.json   # soak

With no arguments, runs the fixed-seed `dune build @serve` smoke.
Otherwise arguments go straight to `repro serveload`.
EOF
}

case "${1:-}" in
-h | --help)
  usage
  exit 0
  ;;
esac

if ! command -v dune >/dev/null 2>&1; then
  echo "scripts/serve.sh: error: 'dune' not found on PATH." >&2
  echo "Install the OCaml toolchain (e.g. 'opam install dune') or run" >&2
  echo "inside an opam environment: 'opam exec -- scripts/serve.sh'." >&2
  exit 127
fi

cd "$(dirname "$0")/.."
dune build
if [ "$#" -eq 0 ]; then
  exec dune build @serve
fi
exec dune exec --no-build bin/main.exe -- serveload "$@"
