#!/usr/bin/env bash
# Regenerate (default) or verify (--check) the generated numeric
# blocks of EXPERIMENTS.md and the golden results file
# results/golden-quick.json from fresh measurements.
#
# `scripts/docs.sh --check` is exactly the CI docs gate: it exits
# non-zero with a readable line diff when the committed document or
# golden results drift from what the committed code measures.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/docs.sh [docs options]

  scripts/docs.sh                      # rewrite EXPERIMENTS.md + golden results
  scripts/docs.sh --check              # verify only; non-zero + diff on drift
  scripts/docs.sh --check --no-cache   # the CI gate (cold measurements)

Extra arguments go to `repro docs` (see --help there: --doc, --golden,
--drift-dir, --refresh, --cache-dir, -j).
EOF
}

case "${1:-}" in
-h | --help)
  usage
  exit 0
  ;;
esac

if ! command -v dune >/dev/null 2>&1; then
  echo "scripts/docs.sh: error: 'dune' not found on PATH." >&2
  echo "Install the OCaml toolchain (e.g. 'opam install dune') or run" >&2
  echo "inside an opam environment: 'opam exec -- scripts/docs.sh'." >&2
  exit 127
fi

cd "$(dirname "$0")/.."
dune build bin/main.exe
exec dune exec --no-build bin/main.exe -- docs "$@"
