#!/usr/bin/env bash
# Correctness gate: build, run the unit/property suites, then the
# sanitized cross-allocator differential fuzzer (fixed-seed traces
# against every allocator, OOM fault injection, and the off-by-one
# self-test).
#
#   scripts/check.sh                      # 200 traces per allocator
#   scripts/check.sh --traces 1000        # heavier fuzz
#   scripts/check.sh --seed 7 --traces 1  # replay a reported failure
#
# Any failure prints a shrunk minimal trace together with its seed.
set -euo pipefail
cd "$(dirname "$0")/.."
dune build
dune runtest
if [ "$#" -eq 0 ]; then
  set -- --traces 200
fi
exec dune exec --no-build bin/main.exe -- check "$@"
