#!/usr/bin/env bash
# Correctness gate: build, run the unit/property suites, then the
# sanitized cross-allocator differential fuzzer (fixed-seed traces
# against every allocator, OOM fault injection, and the off-by-one
# self-test).
#
# Any failure prints a shrunk minimal trace together with its seed.
set -euo pipefail

usage() {
  cat <<'EOF'
usage: scripts/check.sh [check options]

  scripts/check.sh                      # 200 traces per allocator
  scripts/check.sh --traces 1000        # heavier fuzz
  scripts/check.sh --seed 7 --traces 1  # replay a reported failure

Builds the tree, runs the full unit/property suite, then the
differential fuzz gate; extra arguments go to `repro check`.
EOF
}

case "${1:-}" in
-h | --help)
  usage
  exit 0
  ;;
esac

if ! command -v dune >/dev/null 2>&1; then
  echo "scripts/check.sh: error: 'dune' not found on PATH." >&2
  echo "Install the OCaml toolchain (e.g. 'opam install dune') or run" >&2
  echo "inside an opam environment: 'opam exec -- scripts/check.sh'." >&2
  exit 127
fi

cd "$(dirname "$0")/.."
dune build
dune runtest
if [ "$#" -eq 0 ]; then
  set -- --traces 200
fi
exec dune exec --no-build bin/main.exe -- check "$@"
